// The unified metric/objective subsystem: one vocabulary of "what is an
// objective" shared by the mapper (core/mapper.h), the DSE engine
// (core/dse.h), the exploration strategies (core/strategy.h), the
// service facade (core/engine.h), and the CLI/server surface.
//
// Before this layer the notion of an objective lived in four divergent
// places: MappingObjective (latency|energy|edp) in mapper.h,
// BatchAggregate (sum|max|weighted) in workload_set.h, the fixed
// (energy, latency, area) Pareto axes in dse.cpp, and the hardcoded
// four-board leaderboard rank inside SuccessiveHalvingStrategy.  This
// header is now the home of all of them, plus:
//
//   * Metric / MetricVector — named, ordered double slots (energy,
//     latency, area, power, edp, edap, p99_latency) with NaN = unset.
//   * metric_registry() — name -> Metric lookup with units and
//     descriptions (the CLI's --list-objectives table).
//   * ObjectiveSpec — a parsed objective: a single metric, a
//     non-negative weighted sum over metrics (util/expr grammar, e.g.
//     "0.6*edp+0.4*area"), or a lexicographic tuple ("latency,area").
//     The three legacy names latency|energy|edp parse to *canned* specs
//     that score through the original objective_value() switch, keeping
//     every legacy code path (including BnB's admissible bounds)
//     bit-identical.
//   * p99_latency_ns() — an M/G/1-style tail-latency approximation over
//     per-model latencies + WorkloadSet weights (docs/metrics.md derives
//     it), the first genuinely new metric carried through every layer.
//   * fold_batch() — the one batch-totals fold shared by
//     BatchReport::totals and the DSE batch evaluator.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace simphony::core {

// --------------------------------------------------- legacy objective
// (moved verbatim from core/mapper.h; semantics unchanged)

/// What a mapping search minimizes.  The three canonical objectives —
/// now the canned fast path of ObjectiveSpec below.
enum class MappingObjective {
  kLatency,  // predicted critical-path latency (ns)
  kEnergy,   // predicted total energy (pJ)
  kEdp,      // energy-delay product (pJ * ns)
};

[[nodiscard]] const char* to_string(MappingObjective objective);

/// "latency" | "energy" | "edp" -> objective; anything else -> nullopt.
[[nodiscard]] std::optional<MappingObjective> parse_objective(
    const std::string& text);

/// Scalar cost of (energy, latency) under the objective.
[[nodiscard]] double objective_value(MappingObjective objective,
                                     double energy_pJ, double latency_ns);

// ---------------------------------------------------- batch aggregate
// (moved verbatim from core/workload_set.h; semantics unchanged)

/// How per-model metrics of a batch fold into one figure per design
/// point.
enum class BatchAggregate {
  kSum,       // total across models (throughput-style accounting)
  kMax,       // worst model (latency-bound accounting)
  kWeighted,  // weighted sum with WorkloadSet entry weights
};

[[nodiscard]] const char* to_string(BatchAggregate aggregate);

/// "sum" | "max" | "weighted" -> aggregate; anything else -> nullopt.
[[nodiscard]] std::optional<BatchAggregate> parse_aggregate(
    const std::string& text);

/// Folds per-model values under the aggregate mode.  For kWeighted,
/// `weights` must be the same length as `values` (throws
/// std::invalid_argument otherwise); kSum and kMax ignore it.
[[nodiscard]] double aggregate_values(BatchAggregate aggregate,
                                      const std::vector<double>& values,
                                      const std::vector<double>& weights);

/// Power/TOPS are ratios, so they do not fold like the additive metrics:
/// under kSum/kWeighted they derive from the already-folded energy,
/// latency, and MAC totals; under kMax they are the per-model worst case
/// (peak power, minimum TOPS).
struct BatchDerivedMetrics {
  double power_W = 0.0;
  double tops = 0.0;
};

[[nodiscard]] BatchDerivedMetrics derive_batch_metrics(
    BatchAggregate aggregate, double energy_pJ, double latency_ns,
    double macs, const std::vector<double>& per_model_power_W,
    const std::vector<double>& per_model_tops);

// ------------------------------------------------ one shared batch fold

/// One model's slice of a batch fold — the metrics-layer view both
/// BatchReport::ModelResult (core/simulator.h) and DseModelMetrics
/// (core/dse.h) project onto, so batch totals and the DSE batch
/// evaluator fold through exactly one code path.
struct BatchModelSlice {
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
  double area_mm2 = 0.0;
  double macs = 0.0;
  double weight = 1.0;
  double power_W = 0.0;
  double tops = 0.0;
};

/// Aggregate figures of one batch fold.  Area is always the per-model
/// max — one chip must fit the largest per-model memory sizing.
struct BatchFold {
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
  double area_mm2 = 0.0;
  double macs = 0.0;
  double power_W = 0.0;
  double tops = 0.0;
};

/// THE batch fold: energy/latency/MACs through aggregate_values, area as
/// the per-model max, power/TOPS through derive_batch_metrics — in model
/// order, bit-identical to the formerly duplicated folds in
/// BatchReport::totals and the DSE evaluator.
[[nodiscard]] BatchFold fold_batch(BatchAggregate aggregate,
                                   const std::vector<BatchModelSlice>& models);

// ------------------------------------------------- metric vocabulary

/// The compile-known metric slots.  All are minimized; throughput-style
/// figures (TOPS) are deliberately not metrics — a higher-is-better slot
/// would silently invert every consumer that assumes "lower wins".
enum class Metric : size_t {
  kEnergy = 0,   // total energy (pJ)
  kLatency,      // end-to-end latency (ns)
  kArea,         // chip area (mm^2)
  kPower,        // average power (W)
  kEdp,          // energy-delay product (pJ*ns), derived
  kEdap,         // energy-delay-area product (pJ*ns*mm^2), derived
  kP99Latency,   // M/G/1-approximated tail latency (ns), derived
};

inline constexpr size_t kMetricCount = 7;

[[nodiscard]] const char* to_string(Metric metric);

/// Registry row: the name the spec grammar accepts plus the
/// human-facing description (--list-objectives).
struct MetricInfo {
  Metric metric = Metric::kEnergy;
  const char* name = "";
  const char* unit = "";
  const char* description = "";
};

/// All known metrics in Metric enum order — the one name->Metric table
/// the spec grammar, the CLI listing, and the docs share.
[[nodiscard]] const std::array<MetricInfo, kMetricCount>& metric_registry();

/// Registry lookup; nullopt for unknown names.
[[nodiscard]] std::optional<Metric> parse_metric(std::string_view name);

/// "energy|latency|area|power|edp|edap|p99_latency" — for diagnostics.
[[nodiscard]] const std::string& known_metric_names();

/// Named, ordered double slots; NaN marks "not computed" (e.g. p99
/// before anyone supplies the workload mix).  The interchange type of
/// the metric layer: built from ModelTotals / batch folds / DsePoints,
/// consumed by ObjectiveSpec::value, Pareto axes, and leaderboards.
class MetricVector {
 public:
  MetricVector();

  [[nodiscard]] double get(Metric metric) const {
    return values_[static_cast<size_t>(metric)];
  }
  void set(Metric metric, double value) {
    values_[static_cast<size_t>(metric)] = value;
  }

  /// Fills the measured slots and derives edp/edap with the exact
  /// associations the legacy fields used (edp = E*L, edap = E*L*A).
  /// p99_latency stays unset until a caller provides the workload mix.
  [[nodiscard]] static MetricVector of(double energy_pJ, double latency_ns,
                                       double area_mm2, double power_W);

 private:
  std::array<double, kMetricCount> values_;
};

// ------------------------------------------------------- tail latency

/// Design utilization of the tail-latency model: the p99 figure answers
/// "serving this workload mix at 80% utilization, what latency does the
/// 99th-percentile request see?".
inline constexpr double kP99Utilization = 0.8;

/// M/G/1-style 99th-percentile latency (ns) of a request stream whose
/// service times are the per-model latencies drawn with probability
/// proportional to the weights.  Approximation (docs/metrics.md derives
/// it): service p99 from the discrete mix + a Pollaczek–Khinchine mean
/// wait with an exponential tail at utilization kP99Utilization.
/// Returns NaN when any input is non-finite, 0 for an empty or
/// zero-weight mix.  Single-model special case: p99 = S * (1 +
/// ln(100*rho) / (2*(1-rho))) — linear in S, which is what makes
/// p99_latency admissible as a mapper objective.
[[nodiscard]] double p99_latency_ns(const double* latency_ns,
                                    const double* weights, size_t count);
[[nodiscard]] double p99_latency_ns(const std::vector<double>& latency_ns,
                                    const std::vector<double>& weights);

// ----------------------------------------------------- objective spec

/// A parsed --objective: what exploration ranks by and mapping search
/// minimizes.  One shared grammar across CLI, server, and library:
///
///   spec     := metric | weighted | metric (',' metric)+
///   metric   := a metric_registry() name
///   weighted := util/expr arithmetic over metric names that reduces to
///               a non-negative linear combination (e.g.
///               "0.6*edp+0.4*area", "latency+0.01*power")
///
/// The three legacy names latency|energy|edp parse to *canned* specs:
/// canned specs score through the original objective_value() switch and
/// opt out of every new serialization field, so all pre-refactor CLI /
/// server / shard documents stay byte-identical.
class ObjectiveSpec {
 public:
  enum class Kind {
    kSingle,         // one metric
    kWeighted,       // non-negative linear combination
    kLexicographic,  // ordered tie-breaking tuple
  };

  /// The default objective: canned "edp".
  ObjectiveSpec();

  /// Parses a spec string; throws std::invalid_argument with an
  /// offset-annotated diagnostic ("--objective: unknown metric 'foo' at
  /// offset 4 ...") on unknown metric names, nonlinear expressions, or
  /// negative weights.
  [[nodiscard]] static ObjectiveSpec parse(const std::string& text);

  /// The legacy enum as a canned spec (the bit-identical fast path).
  [[nodiscard]] static ObjectiveSpec canned(MappingObjective objective);

  [[nodiscard]] Kind kind() const { return kind_; }
  /// The original spec text (normal form for stamping/round-trips).
  [[nodiscard]] const std::string& text() const { return text_; }
  /// Set iff the spec is one of the three canned legacy objectives.
  [[nodiscard]] std::optional<MappingObjective> canned_objective() const {
    return canned_;
  }
  /// Metrics the spec actually depends on (zero-weight terms dropped),
  /// in Metric enum order.
  [[nodiscard]] const std::vector<Metric>& referenced() const {
    return referenced_;
  }
  [[nodiscard]] bool references(Metric metric) const;
  /// Lexicographic tuple order (kLexicographic only).
  [[nodiscard]] const std::vector<Metric>& lex_order() const { return lex_; }
  /// Weight of a metric in a weighted spec (0 when absent); the
  /// constant term of the expression.
  [[nodiscard]] double weight(Metric metric) const {
    return coefficients_[static_cast<size_t>(metric)];
  }
  [[nodiscard]] double offset() const { return offset_; }

  /// Scalar figure of merit of a metric vector (lower is better).
  /// kSingle reads the slot; kWeighted sums offset + weight*slot over
  /// referenced() in enum order; kLexicographic reads the primary slot
  /// (use less() for full tuple ranking).
  [[nodiscard]] double value(const MetricVector& metrics) const;

  /// Full spec ordering: lexicographic tuple compare for kLex, value()
  /// compare otherwise.  NaN slots compare as ties (callers break ties
  /// and quarantine non-finite entries themselves).
  [[nodiscard]] bool less(const MetricVector& a, const MetricVector& b) const;

  /// Mapping-search score of a candidate's predicted (energy, latency)
  /// totals.  Canned specs call objective_value() verbatim; general
  /// specs score a synthetic vector where area is 0 (assignment-
  /// independent, so it only shifts every candidate equally... and a
  /// constant shift never reorders an argmin), edap degrades to edp
  /// (same reasoning), and p99 is the single-stream tail formula
  /// (linear in latency).  Only call when mapper_compatible().
  [[nodiscard]] double mapper_score(double energy_pJ,
                                    double latency_ns) const;

  /// Whether the spec can drive a mapping search soundly: every
  /// referenced metric must be monotone nondecreasing in the predicted
  /// (energy, latency) totals or assignment-independent, or BnB's
  /// lower bounds stop being admissible.  Rejects power (a ratio,
  /// non-monotone in latency), edap inside weighted sums (the unknown
  /// area factor would reweight the combination), and lexicographic
  /// tuples (rank-only).  On rejection fills `why` (when non-null) with
  /// the diagnostic.
  [[nodiscard]] bool mapper_compatible(std::string* why = nullptr) const;

 private:
  Kind kind_ = Kind::kSingle;
  std::string text_ = "edp";
  std::optional<MappingObjective> canned_ = MappingObjective::kEdp;
  Metric single_ = Metric::kEdp;
  std::vector<Metric> lex_;
  std::array<double, kMetricCount> coefficients_{};
  double offset_ = 0.0;
  std::vector<Metric> referenced_;
};

/// The Pareto axes an objective implies: always the legacy
/// (energy, latency, area) triple — byte-identity for every legacy
/// document — plus any referenced directly-rankable extras (power,
/// p99_latency) appended in enum order.  Derived products (edp, edap)
/// never join: they are dominated-iff-components-dominated only along
/// the axes already present, and the legacy axes cover their factors.
[[nodiscard]] std::vector<Metric> pareto_axes(const ObjectiveSpec& spec);

// ------------------------------------------------ registry extractors

struct ModelTotals;  // core/simulator.h

/// MetricVector of one simulated model (the single-model extractor
/// behind the registry); p99_latency is the single-stream formula over
/// the model's own runtime.
[[nodiscard]] MetricVector metrics_of(const ModelTotals& totals);

/// MetricVector of one batch fold; p99_latency stays unset (it needs
/// the per-model mix, not the fold — use p99_latency_ns directly).
[[nodiscard]] MetricVector metrics_of(const BatchFold& fold);

}  // namespace simphony::core
