// Simulation report containers and rendering.
#pragma once

#include <string>
#include <vector>

#include "arch/link_budget.h"
#include "dataflow/dataflow.h"
#include "energy/report.h"
#include "layout/area.h"
#include "memory/hierarchy.h"
#include "memory/traffic.h"
#include "util/json.h"

namespace simphony::core {

/// Result of simulating one GEMM / layer.
struct LayerReport {
  std::string layer_name;
  std::string subarch_name;
  size_t subarch_index = 0;

  dataflow::DataflowResult dataflow;
  arch::LinkBudgetReport link;
  memory::TrafficResult traffic;
  energy::EnergyBreakdown energy;
  double macs = 0.0;

  [[nodiscard]] double runtime_ns() const { return dataflow.runtime_ns; }
  [[nodiscard]] double energy_pJ() const { return energy.total_pJ(); }
  [[nodiscard]] double average_power_mW() const {
    return energy.average_power_mW(dataflow.runtime_ns);
  }
};

/// Result of simulating a whole model on an architecture.
struct ModelReport {
  std::string model_name;
  std::string arch_name;

  std::vector<LayerReport> layers;
  energy::EnergyBreakdown total_energy;
  double total_runtime_ns = 0.0;

  /// Per-sub-arch area breakdowns plus shared memory area.
  std::vector<layout::AreaBreakdown> subarch_area;
  double memory_area_mm2 = 0.0;
  memory::MemoryHierarchy memory;

  [[nodiscard]] double total_area_mm2() const;
  [[nodiscard]] double average_power_W() const;
  [[nodiscard]] double total_macs() const;
  [[nodiscard]] double tops() const;       // through-put at measured runtime
  [[nodiscard]] double tops_per_W() const;

  [[nodiscard]] util::Json to_json() const;

  /// Per-layer CSV trace (one row per layer: name, sub-arch, cycles,
  /// runtime, utilization, energy by category) for downstream plotting.
  [[nodiscard]] std::string to_csv() const;
};

}  // namespace simphony::core
