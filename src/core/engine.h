// DSE-as-a-service: the request-oriented facade over the whole
// simulation stack.
//
// Every entry point before this layer was one-shot: simphony_cli parsed
// flags, materialized the architecture, warmed the cost-matrix cache,
// answered one question, and threw all of it away.  core::Engine owns
// that warm state across requests — one shared CostMatrixCache (with
// optional cache-file persistence, PR 6), a memo of materialized
// Simulators keyed on (architecture, params), and a util::ThreadPool for
// asynchronous admission — behind typed SimulateRequest/ExploreRequest
// structs with exact-round-trip JSON (util/json.h).
//
// Three layers consume it:
//   * simphony_cli calls the synchronous simulate()/explore() — flag
//     parsing and output rendering only; the rendered documents are
//     byte-identical to the pre-facade CLI.
//   * simphonyd (core/server.h) calls submit(): a bounded admission
//     queue with reject-with-retry-after backpressure, and coalescing of
//     concurrent identical requests onto one evaluation (keyed on the
//     request's canonical JSON — collision-proof, and normalizing, since
//     two spellings of the same request canonicalize identically).
//   * tests drive both paths and assert the warm-cache and coalescing
//     contracts through the per-request cache counters.
//
// Results are bit-identical to the one-shot CLI for every request, warm
// or cold: the cache is first-writer-wins over bit-identical entries and
// the Simulator memo only reuses exactly-equal constructions.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "arch/node.h"
#include "arch/prebuilt.h"
#include "core/dse.h"
#include "core/mapper.h"
#include "core/options.h"
#include "core/simulator.h"
#include "core/strategy.h"
#include "core/workload_set.h"
#include "devlib/library.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace simphony::core {

/// One simulation question: which models on which architecture under
/// which mapping.  Field semantics mirror the CLI flags one-to-one (the
/// CLI is a thin client of this type); validation happens at evaluation
/// with the same diagnostics the CLI has always produced.
struct SimulateRequest {
  /// Prebuilt PTC template names (tempo|lt|mzi|scatter|mrr|butterfly|
  /// pcm|wdm), one sub-architecture each.  Empty with an empty
  /// `description` defaults to {"tempo"}; giving both is an error.
  std::vector<std::string> arch;
  /// Inline circuit description text (arch/description.h) as an
  /// alternative to `arch` — the request is self-contained, so a remote
  /// server needs no access to the client's files.
  std::string description;
  arch::ArchParams params;
  /// Models to simulate (workload_set.h spec syntax).  Empty defaults to
  /// the CLI's single-GEMM demo workload; two or more switch the
  /// response to the batched multi-model document.
  std::vector<WorkloadSpec> models;
  std::string aggregate = "sum";   // sum|max|weighted (batch fold)
  std::string mapping = "rules";   // rules|greedy|beam|bnb
  /// Objective spec (core/metrics.h grammar): a canned name
  /// (latency|energy|edp), any registry metric (e.g. p99_latency), a
  /// weighted sum ("0.6*edp+0.4*area"), or a lexicographic list
  /// ("latency,energy").  Parsed with ObjectiveSpec::parse at evaluation.
  std::string objective = "edp";
  int beam_width = 8;
  /// Consult the engine's shared cost-matrix cache (only effective with
  /// a costed mapping).  Results are bit-identical either way.
  bool cost_cache = true;
  int num_threads = 0;  // ThreadPool::workers_for convention

  /// Canonical JSON: every field emitted, object keys sorted (the
  /// writer's order), numbers round-trip exact — so parse -> to_json is
  /// a normal form and equal requests serialize identically (the
  /// coalescing key).
  [[nodiscard]] util::Json to_json() const;
  /// Strict parse: unknown keys are rejected ("unexpected key ...") so a
  /// typo'd field name can never be silently ignored.
  [[nodiscard]] static SimulateRequest from_json(const util::Json& j);
};

/// A design-space-exploration question over a SimulateRequest's
/// workload: sweep axes, sampler, shard.  `space.base` is ignored —
/// base parameters always come from base.params.
struct ExploreRequest {
  SimulateRequest base;
  /// Sweep axes (DseSpace semantics; empty axis keeps the base value).
  DseSpace space;
  std::string sample = "grid";  // grid|random|lhs
  int samples = 0;              // required >= 1 for random|lhs
  uint64_t seed = 1;
  DseShard shard;
  bool dse_cache = true;  // ArchParams-keyed duplicate-point memo
  /// Exploration strategy (core/strategy.h): one-shot|halving|frontier.
  /// "one-shot" is the legacy evaluate-everything engine, byte-identical
  /// to pre-strategy documents.
  std::string strategy = "one-shot";
  int eta = 3;            // halving: survivor fraction 1/eta per rung
  int rungs = 2;          // halving: rung count (last rung is full fidelity)
  int refine_rounds = 1;  // frontier: refinement rounds after the base pass

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static ExploreRequest from_json(const util::Json& j);
};

/// Typed result of a SimulateRequest.  to_json() reproduces the CLI's
/// --json document byte for byte: the bare ModelReport document (plus
/// "mapping" under a searched strategy) for a single model, the
/// {"arch", "aggregate", "models", "totals"} batch document for two or
/// more.
struct SimulateResponse {
  BatchReport batch;  // one entry per model (single-model: exactly one)
  bool is_batch = false;      // >= 2 models: batch document rendering
  bool mapped = false;        // a searched (non-rules) strategy chose
  BatchAggregate aggregate = BatchAggregate::kSum;
  std::string arch_label;     // template names joined with "+"
  std::string model_label;    // deduped model names joined with "+"
  std::string mapping_name;   // strategy name ("rules", "greedy", ...)
  std::string objective_name;
  /// M/G/1 tail latency of the workload mix (core/metrics.h
  /// p99_latency_ns).  Computed — and serialized as "p99_latency_ns" —
  /// only when the request's objective references p99_latency, so every
  /// legacy document stays byte-identical.
  double p99_latency_ns = std::numeric_limits<double>::quiet_NaN();
  /// Cost-cache activity attributed to THIS request (stats delta across
  /// the evaluation; exact when requests are sequential, approximate
  /// attribution under concurrent evaluations sharing the cache).  All
  /// zero when no cache was attached.
  CostMatrixCache::Stats cache;
  bool cache_attached = false;

  [[nodiscard]] util::Json to_json() const;
};

/// Typed result of an ExploreRequest.  to_json() reproduces the CLI's
/// DSE --json document byte for byte, including the "cost_cache"
/// counters section when a cache was attached — on a fresh engine the
/// per-request delta equals the process-cumulative stats the CLI
/// reports, so the documents are identical; on a warm engine the
/// counters prove the warm serve (>= 90% hits for a repeated request).
struct ExploreResponse {
  DseResult result;
  std::string arch_label;
  std::string model_label;
  std::string sampler_name;
  std::string aggregate_label;  // empty for single-model sweeps
  /// Non-canned objective spec text (ObjectiveSpec::text), surfaced as
  /// the document's "objective" field; empty (every canned spec) omits
  /// the field, keeping legacy documents byte-identical.
  std::string objective;
  size_t total_points = 0;
  DseShard shard;
  CostMatrixCache::Stats cache;  // per-request delta (see above)
  bool cache_attached = false;
  /// Strategy identity + per-rung evaluation accounting.  "one-shot"
  /// (with empty rung_stats) omits the whole "strategy" section from
  /// to_json(), keeping one-shot documents byte-identical to pre-strategy
  /// responses.
  std::string strategy_name = "one-shot";
  int eta = 0;            // halving only; 0 omits the field
  int rungs = 0;          // halving only; 0 omits the field
  int refine_rounds = 0;  // frontier only; 0 omits the field
  std::vector<RungStats> rung_stats;
  /// Random-sampler sweeps report how many of the drawn points were
  /// distinct (the redraw-on-duplicate sampler makes this == samples on
  /// all but tiny spaces); other samplers omit the "distinct" field.
  size_t distinct = 0;
  bool report_distinct = false;

  [[nodiscard]] util::Json to_json() const;
};

// Request-resolution helpers, shared by the Engine's evaluators and the
// CLI (resume verification, shard-writer metadata, human tables) so
// labels and point lists cannot drift between the two.

/// The PTC templates a request names ({"tempo"} default).  Throws on an
/// unknown template name, an empty `arch` list entry, or a request
/// carrying both `arch` and `description`.
[[nodiscard]] std::vector<arch::PtcTemplate> resolve_templates(
    const SimulateRequest& request);

/// Template names joined with "+" (the "arch" label of every document).
[[nodiscard]] std::string arch_label(const SimulateRequest& request);

struct ResolvedModels {
  WorkloadSet workloads;  // bits applied from params, ONN-converted
  std::string label;      // deduped names joined with "+"
};

/// Builds the request's WorkloadSet exactly like the CLI: empty model
/// list defaults to gemm:280x28x280, operand widths come from
/// request.params, repeated names dedup to "name#2", "#3", ...
[[nodiscard]] ResolvedModels resolve_models(const SimulateRequest& request);

/// The mapper a request asks for; nullptr for "rules" (the fixed
/// route-to-sub-arch-0 default).  Throws on an unknown mapping /
/// objective or a non-positive beam width, with the CLI's diagnostics.
[[nodiscard]] std::unique_ptr<Mapper> make_mapper(
    const SimulateRequest& request);

/// The sampler an explore request asks for; nullptr for "grid".  Throws
/// when random|lhs lacks a positive `samples`, or grid carries one.
[[nodiscard]] std::unique_ptr<DseSampler> make_sampler(
    const ExploreRequest& request);

/// The exploration strategy a request asks for; nullptr for "one-shot"
/// (the legacy engine).  Throws on an unknown strategy name, halving
/// parameters out of range (eta >= 2, rungs >= 1), a non-positive
/// refine_rounds, or "frontier" combined with sharding (refined points
/// fall outside the canonical point list, so shards cannot merge).
/// Strategies are stateful and single-use: make a fresh one per
/// explore() evaluation.
[[nodiscard]] std::unique_ptr<ExploreStrategy> make_strategy(
    const ExploreRequest& request);

/// The canonical (unsharded) point list of an explore request — the
/// per-index ground truth the CLI's --resume verification checks
/// recovered points against.
[[nodiscard]] std::vector<arch::ArchParams> resolve_points(
    const ExploreRequest& request);

/// Shard-document metadata of an explore request (what DseShardWriter
/// stamps into --out files and --resume matches against).
[[nodiscard]] DseShardWriter::Metadata explore_metadata(
    const ExploreRequest& request);

/// The long-lived service facade.  Thread-safe: simulate()/explore()/
/// submit() may be called concurrently from any thread (the server's
/// per-connection threads all talk to one Engine).
class Engine {
 public:
  struct Options {
    /// Workers of the asynchronous admission pool (workers_for
    /// convention; 1 degenerates submit() to inline evaluation on the
    /// submitting thread).  Evaluation-internal parallelism is governed
    /// by each request's own num_threads, not this.
    int num_threads = 0;
    /// Admitted-but-unfinished evaluations the engine holds before
    /// rejecting new work (coalesced joins never consume capacity).
    /// 0 rejects everything — the backpressure test seam.
    size_t queue_capacity = 16;
    /// When non-empty: load this cost-cache file at construction
    /// (degrading gracefully, see CostMatrixCache::LoadReport) and save
    /// it back in save_cache() and at destruction.
    std::string cache_file;
    /// Hint returned with a rejection: how long a client should wait
    /// before retrying.
    int retry_after_ms = 50;
    /// Test seam: invoked at the start of every evaluation (async path
    /// only), before any simulation work.
    std::function<void()> evaluation_hook;
  };

  Engine();  // all-defaults Options
  explicit Engine(Options options);
  /// Drains outstanding evaluations, then persists the cache file (when
  /// configured).
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// What the construction-time cache-file load found (default-empty
  /// report when no cache_file was configured).
  [[nodiscard]] const CostMatrixCache::LoadReport& cache_load_report()
      const {
    return load_report_;
  }

  /// Per-call observers and resume support for explore().
  struct ExploreHooks {
    /// Fires as each point completes (completion order), after the point
    /// is final — the CLI streams shard files from this.
    std::function<void(const DsePoint&)> on_point;
    /// Generic progress milestones (CommonOptions contract).  Fires
    /// after on_point for the same completion, so an abort thrown from
    /// here never loses a streamed point.
    std::function<void(const Progress&)> on_progress;
    /// Canonical indices to skip (--resume).  Not owned.
    const std::unordered_set<size_t>* skip_indices = nullptr;
  };

  /// Synchronous evaluation on the calling thread (the CLI path — no
  /// queue, no capacity check).  Throws what the underlying engines
  /// throw; whatever an on_progress hook throws unwinds through here
  /// (the CLI's cooperative interrupt).
  [[nodiscard]] SimulateResponse simulate(
      const SimulateRequest& request,
      const std::function<void(const Progress&)>& on_progress = nullptr);
  [[nodiscard]] ExploreResponse explore(const ExploreRequest& request,
                                        const ExploreHooks& hooks);
  [[nodiscard]] ExploreResponse explore(const ExploreRequest& request);

  /// Terminal result of an asynchronous evaluation.
  struct Outcome {
    bool ok = false;
    std::string error;    // diagnostic when !ok
    util::Json document;  // the response's to_json() when ok
    CostMatrixCache::Stats cache;  // per-request delta
    bool cache_attached = false;
  };

  /// Admission verdict.  accepted == false means the queue was full:
  /// retry after retry_after_ms.  coalesced == true means an identical
  /// request was already in flight and this submission shares its
  /// outcome (and its progress stream — the new on_progress is NOT
  /// wired).  `outcome` is valid iff accepted.
  struct Admission {
    bool accepted = false;
    bool coalesced = false;
    int retry_after_ms = 0;
    std::shared_future<Outcome> outcome;
  };

  /// Asynchronous admission on the engine pool.  Evaluation errors land
  /// in the Outcome (ok == false), never as exceptions from the future.
  [[nodiscard]] Admission submit(
      const SimulateRequest& request,
      std::function<void(const Progress&)> on_progress = nullptr);
  [[nodiscard]] Admission submit(
      const ExploreRequest& request,
      std::function<void(const Progress&)> on_progress = nullptr);

  /// Admitted evaluations not yet completed.
  [[nodiscard]] size_t pending() const;
  /// Blocks until every admitted evaluation has completed (graceful
  /// drain; new submissions meanwhile still admit normally).
  void drain();
  /// Atomically persists the cache to Options::cache_file (no-op when
  /// unset).
  void save_cache() const;

  /// Cumulative stats of the shared cost-matrix cache.
  [[nodiscard]] CostMatrixCache::Stats cache_stats() const {
    return cache_.stats();
  }
  /// The shared cache itself (tests seed and inspect it).
  [[nodiscard]] CostMatrixCache& cost_cache() { return cache_; }

  /// Admission accounting since construction.
  struct Counters {
    uint64_t accepted = 0;   // evaluations admitted (excludes coalesced)
    uint64_t coalesced = 0;  // submissions joined onto an in-flight twin
    uint64_t rejected = 0;   // queue-full rejections
    uint64_t completed = 0;  // evaluations finished (ok or not)
  };
  [[nodiscard]] Counters counters() const;

 private:
  [[nodiscard]] SimulateResponse evaluate_simulate(
      const SimulateRequest& request,
      const std::function<void(const Progress&)>& on_progress);
  [[nodiscard]] ExploreResponse evaluate_explore(
      const ExploreRequest& request, const ExploreHooks& hooks);
  /// Memoized Simulator for (arch, description, params); the memo is
  /// capacity-bounded and cleared wholesale when full (shared_ptrs keep
  /// in-use Simulators alive).
  [[nodiscard]] std::shared_ptr<const Simulator> simulator_for(
      const SimulateRequest& request);
  [[nodiscard]] Admission admit(
      std::string key, std::function<Outcome()> evaluate);

  Options options_;
  CostMatrixCache cache_;
  CostMatrixCache::LoadReport load_report_;
  devlib::DeviceLibrary lib_;

  mutable std::mutex mutex_;
  std::condition_variable drained_;
  std::unordered_map<std::string, std::shared_future<Outcome>> inflight_;
  std::unordered_map<std::string, std::shared_ptr<const Simulator>>
      simulators_;
  size_t active_ = 0;  // admitted, not yet completed
  Counters counters_;

  /// Declared last: destroyed first, joining workers (whose tasks touch
  /// every member above) before anything else is torn down.
  util::ThreadPool pool_;
};

}  // namespace simphony::core
