#include "core/mapper.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "util/arena.h"
#include "util/thread_pool.h"

namespace simphony::core {

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

/// Throws when any layer has no feasible sub-arch, aggregating *every*
/// stuck layer's per-sub-arch diagnostics into one message — a model with
/// several unmappable layers reports them all at once instead of only the
/// first one found.  Allocation-free on the happy path (it sits on the
/// per-design-point critical path of every search strategy).
void require_mappable(const MappingProblem& problem) {
  const CostMatrix& costs = *problem.costs;
  std::string message;
  for (size_t g = 0; g < costs.num_gemms(); ++g) {
    const std::uint8_t* feasible = costs.feasible_row(g);
    bool any = false;
    for (size_t s = 0; s < costs.num_subarchs() && !any; ++s) {
      any = feasible[s] != 0;
    }
    if (any) continue;
    if (!message.empty()) message += "\n";
    message += "no sub-architecture can run GEMM '" +
               (*problem.gemms)[g].name + "' (layer " + std::to_string(g) +
               ")";
    for (size_t s = 0; s < costs.num_subarchs(); ++s) {
      message += "; sub-arch " + std::to_string(s) + ": " +
                 costs.at(g, s).error;
    }
  }
  if (!message.empty()) throw std::invalid_argument(message);
}

void require_costs(const MappingProblem& problem, const char* who) {
  if (problem.gemms == nullptr) {
    throw std::invalid_argument(std::string(who) +
                                " needs a MappingProblem with gemms");
  }
  if (problem.costs == nullptr) {
    throw std::invalid_argument(std::string(who) +
                                " needs a MappingProblem with a cost matrix");
  }
}

Mapping finalize(const ObjectiveSpec& objective,
                 std::vector<size_t> assignment, double energy_pJ,
                 double latency_ns) {
  Mapping mapping;
  mapping.assignment = std::move(assignment);
  mapping.predicted_energy_pJ = energy_pJ;
  mapping.predicted_latency_ns = latency_ns;
  mapping.predicted_cost = objective.mapper_score(energy_pJ, latency_ns);
  return mapping;
}

/// All search strategies share the compatibility gate: a spec that cannot
/// give a sound scalar mapping score (lexicographic tuples, power,
/// weighted edap — see ObjectiveSpec::mapper_compatible) is rejected at
/// construction, before any cost matrix is built.
ObjectiveSpec require_mapper_spec(ObjectiveSpec objective, const char* who) {
  std::string why;
  if (!objective.mapper_compatible(&why)) {
    throw std::invalid_argument(std::string(who) + ": objective '" +
                                objective.text() + "' cannot drive a "
                                "mapping search: " + why);
  }
  return objective;
}

}  // namespace

// ------------------------------------------------------------- CostMatrix

CostMatrix::CostMatrix(size_t num_gemms, size_t num_subarchs)
    : num_gemms_(num_gemms),
      num_subarchs_(num_subarchs),
      entries_(num_gemms * num_subarchs),
      feasible_(num_gemms * num_subarchs, 0),
      energy_pJ_(num_gemms * num_subarchs, kInfeasible),
      latency_ns_(num_gemms * num_subarchs, kInfeasible) {}

const CostMatrix::Entry& CostMatrix::at(size_t gemm, size_t subarch) const {
  if (gemm >= num_gemms_ || subarch >= num_subarchs_) {
    throw std::out_of_range("CostMatrix::at(" + std::to_string(gemm) + ", " +
                            std::to_string(subarch) + ") out of range");
  }
  static const Entry empty;
  const auto& entry = entries_[gemm * num_subarchs_ + subarch];
  return entry != nullptr ? *entry : empty;
}

void CostMatrix::set_soa(size_t index, const Entry& entry) {
  feasible_[index] = entry.feasible ? 1 : 0;
  // The scalar objective terms are extracted once at store time (the
  // search loops would otherwise re-sum the energy breakdown per read).
  energy_pJ_[index] = entry.feasible ? entry.report.energy_pJ() : kInfeasible;
  latency_ns_[index] =
      entry.feasible ? entry.report.runtime_ns() : kInfeasible;
}

void CostMatrix::set(size_t gemm, size_t subarch, Entry entry) {
  set(gemm, subarch,
      std::make_shared<const Entry>(std::move(entry)));
}

void CostMatrix::set(size_t gemm, size_t subarch,
                     std::shared_ptr<const Entry> entry) {
  if (gemm >= num_gemms_ || subarch >= num_subarchs_) {
    throw std::out_of_range("CostMatrix::set(" + std::to_string(gemm) + ", " +
                            std::to_string(subarch) + ") out of range");
  }
  const size_t index = gemm * num_subarchs_ + subarch;
  set_soa(index, *entry);
  entries_[index] = std::move(entry);
}

double CostMatrix::cost(size_t gemm, size_t subarch,
                        MappingObjective objective) const {
  if (gemm >= num_gemms_ || subarch >= num_subarchs_) {
    throw std::out_of_range("CostMatrix::cost(" + std::to_string(gemm) +
                            ", " + std::to_string(subarch) +
                            ") out of range");
  }
  const size_t index = gemm * num_subarchs_ + subarch;
  if (feasible_[index] == 0) return kInfeasible;
  return objective_value(objective, energy_pJ_[index], latency_ns_[index]);
}

std::vector<size_t> CostMatrix::feasible_subarchs(size_t gemm) const {
  if (gemm >= num_gemms_) {
    throw std::out_of_range("CostMatrix::feasible_subarchs(" +
                            std::to_string(gemm) + ") out of range");
  }
  std::vector<size_t> out;
  const std::uint8_t* row = feasible_row(gemm);
  for (size_t s = 0; s < num_subarchs_; ++s) {
    if (row[s] != 0) out.push_back(s);
  }
  return out;
}

// -------------------------------------------------------- CostMatrixCache

std::shared_ptr<const CostMatrix::Entry> CostMatrixCache::find(
    const Key& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

std::shared_ptr<const CostMatrix::Entry> CostMatrixCache::insert(
    const Key& key, CostMatrix::Entry entry) {
  auto stored = std::make_shared<const CostMatrix::Entry>(std::move(entry));
  std::lock_guard<std::mutex> lock(mutex_);
  // First writer wins: concurrent writers of one key carry bit-identical
  // entries (same key => same simulation inputs), so which one lands is
  // immaterial for determinism.
  return entries_.try_emplace(key, std::move(stored)).first->second;
}

CostMatrixCache::Stats CostMatrixCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t CostMatrixCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void CostMatrixCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = Stats{};
}

// ----------------------------------------------------------------- Mapper

std::vector<std::string> Mapper::validate(const arch::Architecture&) const {
  return {};
}

// ------------------------------------------------------------- RuleMapper

RuleMapper::RuleMapper(MappingConfig config) : config_(std::move(config)) {}

std::vector<std::string> RuleMapper::validate(
    const arch::Architecture& architecture) const {
  return config_.validate(architecture);
}

Mapping RuleMapper::map(const MappingProblem& problem) const {
  if (problem.gemms == nullptr) {
    throw std::invalid_argument(
        "RuleMapper needs a MappingProblem with gemms");
  }
  Mapping mapping;
  mapping.assignment.reserve(problem.gemms->size());
  for (const auto& gemm : *problem.gemms) {
    mapping.assignment.push_back(config_.resolve(gemm));
  }
  return mapping;  // no costs consulted: predictions stay 0
}

// ----------------------------------------------------------- GreedyMapper

GreedyMapper::GreedyMapper(MappingObjective objective)
    : objective_(ObjectiveSpec::canned(objective)) {}

GreedyMapper::GreedyMapper(ObjectiveSpec objective)
    : objective_(require_mapper_spec(std::move(objective), "GreedyMapper")) {}

Mapping GreedyMapper::map(const MappingProblem& problem) const {
  require_costs(problem, "GreedyMapper");
  require_mappable(problem);
  const CostMatrix& costs = *problem.costs;

  const size_t S = costs.num_subarchs();
  std::vector<size_t> assignment;
  assignment.reserve(costs.num_gemms());
  double energy = 0.0;
  double latency = 0.0;
  for (size_t g = 0; g < costs.num_gemms(); ++g) {
    const std::uint8_t* feasible = costs.feasible_row(g);
    const double* row_energy = costs.energy_row(g);
    const double* row_latency = costs.latency_row(g);
    size_t best = S;
    double best_cost = kInfeasible;
    for (size_t s = 0; s < S; ++s) {
      if (feasible[s] == 0) continue;
      const double c = objective_.mapper_score(row_energy[s], row_latency[s]);
      if (c < best_cost) {
        best_cost = c;
        best = s;
      }
    }
    // require_mappable guarantees a feasible sub-arch per layer.
    energy += row_energy[best];
    latency += row_latency[best];
    assignment.push_back(best);
  }
  return finalize(objective_, std::move(assignment), energy, latency);
}

// ------------------------------------------------------------- BeamMapper

namespace {

/// One expansion of a beam state by one sub-arch choice.  `valid` is false
/// for infeasible pairs.  Trivially destructible by design: candidate
/// buffers live in the thread-local scratch arena.
struct Candidate {
  bool valid = false;
  size_t state = 0;    // row index into the previous beam
  size_t subarch = 0;  // the appended choice
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
  double score = kInfeasible;
};

/// Strict total order: score, then the candidate's full assignment
/// (prefix, then appended sub-arch) lexicographically.  Prefixes are rows
/// of `stride` elements in the flat beam-assignment array, all
/// `prefix_len` long at a given layer.  Distinct candidates always differ
/// in assignment, so the order — and therefore the pruned beam — is
/// unique regardless of evaluation or sort order.
bool candidate_less(const Candidate& a, const Candidate& b,
                    const size_t* assignments, size_t prefix_len,
                    size_t stride) {
  if (a.score != b.score) return a.score < b.score;
  const size_t* pa = assignments + a.state * stride;
  const size_t* pb = assignments + b.state * stride;
  for (size_t i = 0; i < prefix_len; ++i) {
    if (pa[i] != pb[i]) return pa[i] < pb[i];
  }
  return a.subarch < b.subarch;
}

}  // namespace

BeamMapper::BeamMapper(size_t width, MappingObjective objective,
                       int num_threads)
    : BeamMapper(width, ObjectiveSpec::canned(objective), num_threads) {}

BeamMapper::BeamMapper(size_t width, ObjectiveSpec objective, int num_threads)
    : width_(width),
      objective_(require_mapper_spec(std::move(objective), "BeamMapper")),
      num_threads_(num_threads) {
  if (width_ == 0) {
    throw std::invalid_argument("BeamMapper width must be >= 1");
  }
  if (num_threads_ < 0) {
    throw std::invalid_argument("BeamMapper num_threads must be >= 0");
  }
}

Mapping BeamMapper::map(const MappingProblem& problem) const {
  require_costs(problem, "BeamMapper");
  require_mappable(problem);
  const CostMatrix& costs = *problem.costs;
  const size_t n = costs.num_gemms();
  const size_t S = costs.num_subarchs();

  // Engine-wide thread-count convention (0 = one worker per hardware
  // thread, 1 = serial inline execution); never more workers than beam
  // states to expand.
  util::ThreadPool pool(util::ThreadPool::workers_for(num_threads_, width_));

  // The whole search state lives in the thread-local scratch arena as flat
  // rows — beam assignments are `width_` rows of `n` slots, so a layer
  // transition is pointer swaps plus row copies, with zero steady-state
  // heap traffic.  Nothing allocated here escapes the scope: the winning
  // row is copied into the Mapping before return.
  util::Arena& arena = util::thread_scratch();
  util::ArenaScope scope(arena);
  size_t* cur_assign = arena.allocate_array<size_t>(width_ * n);
  size_t* next_assign = arena.allocate_array<size_t>(width_ * n);
  double* cur_energy = arena.allocate_array<double>(width_);
  double* cur_latency = arena.allocate_array<double>(width_);
  double* next_energy = arena.allocate_array<double>(width_);
  double* next_latency = arena.allocate_array<double>(width_);
  Candidate* candidates = arena.allocate_array<Candidate>(width_ * S);
  size_t* order = arena.allocate_array<size_t>(width_ * S);

  size_t beam_size = 1;  // the empty prefix
  cur_energy[0] = 0.0;
  cur_latency[0] = 0.0;

  for (size_t g = 0; g < n; ++g) {
    const std::uint8_t* feasible = costs.feasible_row(g);
    const double* row_energy = costs.energy_row(g);
    const double* row_latency = costs.latency_row(g);

    // Expand every beam state by every sub-arch choice.  Each state owns
    // an indexed slot range of the candidate array (every slot written,
    // valid or not), so the array contents are identical for any thread
    // count; scoring a pair is pure arithmetic on the SoA cost rows.
    pool.parallel_for(beam_size, [&](size_t b) {
      for (size_t s = 0; s < S; ++s) {
        Candidate& cand = candidates[b * S + s];
        if (feasible[s] == 0) {
          cand = Candidate{};
          continue;
        }
        cand.valid = true;
        cand.state = b;
        cand.subarch = s;
        cand.energy_pJ = cur_energy[b] + row_energy[s];
        cand.latency_ns = cur_latency[b] + row_latency[s];
        cand.score = objective_.mapper_score(cand.energy_pJ, cand.latency_ns);
      }
    });

    size_t num_valid = 0;
    for (size_t i = 0; i < beam_size * S; ++i) {
      if (candidates[i].valid) order[num_valid++] = i;
    }
    if (num_valid == 0) {
      // Unreachable: require_mappable guarantees every layer expands at
      // least one candidate from a non-empty beam.
      throw std::logic_error("BeamMapper: beam emptied at layer " +
                             std::to_string(g));
    }
    std::sort(order, order + num_valid, [&](size_t a, size_t b) {
      return candidate_less(candidates[a], candidates[b], cur_assign, g, n);
    });
    const size_t next_size = std::min(num_valid, width_);

    for (size_t r = 0; r < next_size; ++r) {
      const Candidate& cand = candidates[order[r]];
      const size_t* src = cur_assign + cand.state * n;
      size_t* dst = next_assign + r * n;
      std::copy(src, src + g, dst);
      dst[g] = cand.subarch;
      next_energy[r] = cand.energy_pJ;
      next_latency[r] = cand.latency_ns;
    }
    std::swap(cur_assign, next_assign);
    std::swap(cur_energy, next_energy);
    std::swap(cur_latency, next_latency);
    beam_size = next_size;
  }

  // The beam is sorted by (score, lexicographic assignment); row 0 is the
  // deterministic winner.  (With no GEMMs the empty prefix survives.)
  return finalize(objective_,
                  std::vector<size_t>(cur_assign, cur_assign + n),
                  cur_energy[0], cur_latency[0]);
}

// ----------------------------------------------------- BranchBoundMapper

namespace {

/// State shared by every subtree of one branch-and-bound search.
struct BnbContext {
  const CostMatrix* costs = nullptr;
  const ObjectiveSpec* objective = nullptr;
  size_t n = 0;
  size_t S = 0;
  /// suffix_min_*[g] = sum over layers k >= g of the feasible minimum of
  /// that component (suffix_min_*[n] = 0).
  std::vector<double> suffix_min_energy;
  std::vector<double> suffix_min_latency;
};

/// A full-assignment candidate: score + the totals it was scored from.
struct BnbBest {
  bool valid = false;
  double score = kInfeasible;
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
  std::vector<size_t> assignment;
};

/// The ExhaustiveMapper tie-break: lower score, then lexicographically
/// smaller assignment.
bool bnb_better(double score, const std::vector<size_t>& assignment,
                const BnbBest& than) {
  if (!than.valid) return true;
  if (score != than.score) return score < than.score;
  return assignment < than.assignment;
}

/// Lower bound on the score of any completion of a prefix with sums
/// (energy, latency) at `depth`.  Latency/energy are additive, so prefix
/// + suffix-of-minima bounds the relaxation that picks each remaining
/// layer independently; for EDP the component-wise minima bound applies
/// because EDP is monotone in both totals and every completion satisfies
/// E >= E_lb and L >= L_lb.
///
/// The raw value is admissible only in real arithmetic: the suffix sums
/// accumulate right-to-left while a DFS completion sums left-to-right,
/// so non-associative floating-point addition (and the EDP product) can
/// push the computed bound a few ulps above a completion's true score.
/// The caller therefore prunes against a slightly deflated bound — see
/// bnb_safe_bound — trading ulp-marginal extra exploration for the
/// bit-for-bit ExhaustiveMapper equivalence the class guarantees.
double bnb_bound(const BnbContext& ctx, size_t depth, double energy,
                 double latency) {
  // Scoring the component-wise minima is admissible for every
  // mapper-compatible spec: each scored metric is monotone nondecreasing
  // in (E, L) (mapper_compatible rejects the ratios that are not), and
  // every completion satisfies E >= E_lb and L >= L_lb.  For the canned
  // objectives mapper_score IS objective_value, so this computes the
  // legacy latency / energy / EDP bounds bit for bit.
  return ctx.objective->mapper_score(energy + ctx.suffix_min_energy[depth],
                                     latency + ctx.suffix_min_latency[depth]);
}

/// Deflates a bound by a relative margin comfortably above the
/// accumulated rounding error of an n-term sum (or product of two such
/// sums): error <= ~(n + 2) * eps relative, margin = 1e-12 covers
/// thousands of layers.  Always moves toward -infinity, so pruning only
/// ever gets more conservative, never unsound.
double bnb_safe_bound(double bound) {
  constexpr double kSlack = 1e-12;
  return bound - std::abs(bound) * kSlack;
}

/// Lock-free monotone minimum on the shared pruning bound.  The bound only
/// ever tightens, and pruning is strict (> only), so the timing of updates
/// affects how much work is skipped but never which mapping wins.
void bnb_relax(std::atomic<double>& bound, double score) {
  double current = bound.load(std::memory_order_relaxed);
  while (score < current &&
         !bound.compare_exchange_weak(current, score,
                                      std::memory_order_relaxed)) {
  }
}

/// Serial DFS under one subtree.  `path` holds the assignment prefix;
/// prefix sums accumulate left to right, which keeps the floating-point
/// summation order identical to ExhaustiveMapper's per-candidate loop.
void bnb_dfs(const BnbContext& ctx, size_t depth, double energy,
             double latency, std::vector<size_t>& path, BnbBest& local,
             std::atomic<double>& bound, BranchBoundMapper::Stats& stats) {
  if (bnb_safe_bound(bnb_bound(ctx, depth, energy, latency)) >
      bound.load(std::memory_order_relaxed)) {
    ++stats.pruned;
    return;
  }
  ++stats.visited;  // expanded nodes only — disjoint from pruned
  if (depth == ctx.n) {
    const double score = ctx.objective->mapper_score(energy, latency);
    if (bnb_better(score, path, local)) {
      local.valid = true;
      local.score = score;
      local.energy_pJ = energy;
      local.latency_ns = latency;
      local.assignment = path;
      bnb_relax(bound, score);
    }
    return;
  }
  const std::uint8_t* feasible = ctx.costs->feasible_row(depth);
  const double* row_energy = ctx.costs->energy_row(depth);
  const double* row_latency = ctx.costs->latency_row(depth);
  for (size_t s = 0; s < ctx.S; ++s) {
    if (feasible[s] == 0) continue;
    path.push_back(s);
    bnb_dfs(ctx, depth + 1, energy + row_energy[s], latency + row_latency[s],
            path, local, bound, stats);
    path.pop_back();
  }
}

}  // namespace

BranchBoundMapper::BranchBoundMapper(MappingObjective objective,
                                     int num_threads)
    : BranchBoundMapper(ObjectiveSpec::canned(objective), num_threads) {}

BranchBoundMapper::BranchBoundMapper(ObjectiveSpec objective, int num_threads)
    : objective_(
          require_mapper_spec(std::move(objective), "BranchBoundMapper")),
      num_threads_(num_threads) {
  if (num_threads_ < 0) {
    throw std::invalid_argument(
        "BranchBoundMapper num_threads must be >= 0");
  }
}

Mapping BranchBoundMapper::map(const MappingProblem& problem) const {
  return map_counted(problem, nullptr);
}

Mapping BranchBoundMapper::map_counted(const MappingProblem& problem,
                                       Stats* stats) const {
  require_costs(problem, "BranchBoundMapper");
  require_mappable(problem);
  const CostMatrix& costs = *problem.costs;

  BnbContext ctx;
  ctx.costs = &costs;
  ctx.objective = &objective_;
  ctx.n = costs.num_gemms();
  ctx.S = costs.num_subarchs();
  ctx.suffix_min_energy.assign(ctx.n + 1, 0.0);
  ctx.suffix_min_latency.assign(ctx.n + 1, 0.0);
  for (size_t g = ctx.n; g > 0; --g) {
    const std::uint8_t* feasible = costs.feasible_row(g - 1);
    const double* row_energy = costs.energy_row(g - 1);
    const double* row_latency = costs.latency_row(g - 1);
    double min_energy = kInfeasible;
    double min_latency = kInfeasible;
    for (size_t s = 0; s < ctx.S; ++s) {
      if (feasible[s] == 0) continue;
      min_energy = std::min(min_energy, row_energy[s]);
      min_latency = std::min(min_latency, row_latency[s]);
    }
    ctx.suffix_min_energy[g - 1] = min_energy + ctx.suffix_min_energy[g];
    ctx.suffix_min_latency[g - 1] = min_latency + ctx.suffix_min_latency[g];
  }

  Stats local_stats;
  local_stats.total_assignments =
      std::pow(static_cast<double>(ctx.S), static_cast<double>(ctx.n));

  // Incumbent seed: GreedyMapper's per-layer argmin (optimal for
  // additive objectives, a strong start for EDP) — reused outright so
  // its tie-break and left-to-right summation order can never drift
  // from the pruning argument that relies on them.  The seed's score
  // enters the shared pruning bound; the assignment itself joins the
  // final reduction, though the DFS always re-finds it (no ancestor of
  // an incumbent-score leaf can exceed the bound, and pruning is
  // strict).
  BnbBest seed;
  {
    Mapping greedy = GreedyMapper(objective_).map(problem);
    seed.valid = true;
    seed.score = greedy.predicted_cost;
    seed.energy_pJ = greedy.predicted_energy_pJ;
    seed.latency_ns = greedy.predicted_latency_ns;
    seed.assignment = std::move(greedy.assignment);
  }
  std::atomic<double> bound{seed.score};

  // Engine-wide thread-count convention (0 = one worker per hardware
  // thread; workers_for returns 0 — inline — for a serial request).
  const unsigned pool_threads = util::ThreadPool::workers_for(
      num_threads_, std::numeric_limits<size_t>::max());

  BnbBest winner = seed;
  if (pool_threads == 0 || ctx.n == 0) {
    BnbBest local;
    std::vector<size_t> path;
    path.reserve(ctx.n);
    bnb_dfs(ctx, 0, 0.0, 0.0, path, local, bound, local_stats);
    if (local.valid &&
        bnb_better(local.score, local.assignment, winner)) {
      winner = std::move(local);
    }
  } else {
    // Split the tree at a fixed small depth into its lex-ordered feasible
    // prefixes; each prefix's subtree runs as one pool task.  Workers
    // share only the monotone pruning bound, so each subtree's winner is
    // independent of scheduling, and the reduction below is a pure
    // (score, lexicographic) fold — bit-identical for any thread count.
    size_t depth = 0;
    size_t width = 1;
    while (depth < ctx.n && width < 4 * static_cast<size_t>(pool_threads) &&
           width <= 4096 / std::max<size_t>(ctx.S, 1)) {
      ++depth;
      width *= ctx.S;
    }
    struct SubtreeRoot {
      std::vector<size_t> path;
      double energy_pJ = 0.0;
      double latency_ns = 0.0;
    };
    std::vector<SubtreeRoot> roots;
    {
      SubtreeRoot root;
      std::vector<SubtreeRoot> frontier{root};
      for (size_t level = 0; level < depth; ++level) {
        const std::uint8_t* feasible = costs.feasible_row(level);
        const double* row_energy = costs.energy_row(level);
        const double* row_latency = costs.latency_row(level);
        std::vector<SubtreeRoot> next;
        next.reserve(frontier.size() * ctx.S);
        for (const SubtreeRoot& r : frontier) {
          for (size_t s = 0; s < ctx.S; ++s) {
            if (feasible[s] == 0) continue;
            SubtreeRoot child;
            child.path = r.path;
            child.path.push_back(s);
            child.energy_pJ = r.energy_pJ + row_energy[s];
            child.latency_ns = r.latency_ns + row_latency[s];
            next.push_back(std::move(child));
          }
        }
        frontier = std::move(next);
      }
      roots = std::move(frontier);
    }

    // One chunked parallel_for over the subtree roots (the caller
    // participates; participants steal chunks of roots as their own run
    // dry).  Each root writes only its own indexed slots, so the reduction
    // below sees the same per-root winners for any thread count.
    std::vector<BnbBest> locals(roots.size());
    std::vector<Stats> task_stats(roots.size());
    util::ThreadPool pool(pool_threads);
    pool.parallel_for(roots.size(), [&](size_t r) {
      std::vector<size_t> path = roots[r].path;
      path.reserve(ctx.n);
      bnb_dfs(ctx, depth, roots[r].energy_pJ, roots[r].latency_ns, path,
              locals[r], bound, task_stats[r]);
    });

    for (size_t r = 0; r < roots.size(); ++r) {
      local_stats.visited += task_stats[r].visited;
      local_stats.pruned += task_stats[r].pruned;
      if (locals[r].valid &&
          bnb_better(locals[r].score, locals[r].assignment, winner)) {
        winner = std::move(locals[r]);
      }
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return finalize(objective_, std::move(winner.assignment),
                  winner.energy_pJ, winner.latency_ns);
}

// ------------------------------------------------------ ExhaustiveMapper

ExhaustiveMapper::ExhaustiveMapper(MappingObjective objective)
    : objective_(ObjectiveSpec::canned(objective)) {}

ExhaustiveMapper::ExhaustiveMapper(ObjectiveSpec objective)
    : objective_(
          require_mapper_spec(std::move(objective), "ExhaustiveMapper")) {}

Mapping ExhaustiveMapper::map(const MappingProblem& problem) const {
  require_costs(problem, "ExhaustiveMapper");
  const CostMatrix& costs = *problem.costs;
  const size_t n = costs.num_gemms();
  const size_t S = costs.num_subarchs();

  constexpr size_t kMaxCandidates = size_t{1} << 20;
  double total = 1.0;
  for (size_t g = 0; g < n; ++g) total *= static_cast<double>(S);
  if (total > static_cast<double>(kMaxCandidates)) {
    throw std::invalid_argument(
        "ExhaustiveMapper: " + std::to_string(S) + "^" + std::to_string(n) +
        " candidate assignments exceed the enumeration limit; use "
        "BeamMapper");
  }

  // Every GEMM must be runnable somewhere, otherwise no assignment is
  // feasible; report every stuck layer with per-sub-arch diagnostics.
  require_mappable(problem);

  // Mixed-radix counter with the last GEMM as the least significant digit:
  // enumeration order is lexicographic, so keeping the first strictly
  // better assignment yields the lexicographically smallest optimum — the
  // same tie-break BeamMapper uses.
  std::vector<size_t> digits(n, 0);
  std::vector<size_t> best_assignment;
  double best_score = kInfeasible;
  double best_energy = 0.0;
  double best_latency = 0.0;
  bool done = n == 0;
  while (!done) {
    double energy = 0.0;
    double latency = 0.0;
    bool feasible = true;
    for (size_t g = 0; g < n && feasible; ++g) {
      const size_t s = digits[g];
      if (costs.feasible_row(g)[s] == 0) {
        feasible = false;
        break;
      }
      energy += costs.energy_row(g)[s];
      latency += costs.latency_row(g)[s];
    }
    if (feasible) {
      const double score = objective_.mapper_score(energy, latency);
      if (score < best_score) {
        best_score = score;
        best_assignment = digits;
        best_energy = energy;
        best_latency = latency;
      }
    }

    size_t pos = n;
    while (pos > 0) {
      --pos;
      if (++digits[pos] < S) break;
      digits[pos] = 0;
      if (pos == 0) done = true;
    }
  }

  return finalize(objective_, std::move(best_assignment), best_energy,
                  best_latency);
}

}  // namespace simphony::core
