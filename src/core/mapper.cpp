#include "core/mapper.h"

#include <algorithm>
#include <future>
#include <stdexcept>

#include "util/thread_pool.h"

namespace simphony::core {

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

/// Per-layer objective terms of one feasible cost-matrix entry.
struct PairCost {
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
};

PairCost pair_cost(const CostMatrix::Entry& entry) {
  return {entry.report.energy_pJ(), entry.report.runtime_ns()};
}

[[noreturn]] void throw_unmappable(const MappingProblem& problem,
                                   size_t gemm_index) {
  const workload::GemmWorkload& gemm = (*problem.gemms)[gemm_index];
  std::string message = "no sub-architecture can run GEMM '" + gemm.name +
                        "' (layer " + std::to_string(gemm_index) + ")";
  for (size_t s = 0; s < problem.costs->num_subarchs(); ++s) {
    message += "; sub-arch " + std::to_string(s) + ": " +
               problem.costs->at(gemm_index, s).error;
  }
  throw std::invalid_argument(message);
}

void require_costs(const MappingProblem& problem, const char* who) {
  if (problem.gemms == nullptr) {
    throw std::invalid_argument(std::string(who) +
                                " needs a MappingProblem with gemms");
  }
  if (problem.costs == nullptr) {
    throw std::invalid_argument(std::string(who) +
                                " needs a MappingProblem with a cost matrix");
  }
}

Mapping finalize(MappingObjective objective, std::vector<size_t> assignment,
                 double energy_pJ, double latency_ns) {
  Mapping mapping;
  mapping.assignment = std::move(assignment);
  mapping.predicted_energy_pJ = energy_pJ;
  mapping.predicted_latency_ns = latency_ns;
  mapping.predicted_cost = objective_value(objective, energy_pJ, latency_ns);
  return mapping;
}

}  // namespace

const char* to_string(MappingObjective objective) {
  switch (objective) {
    case MappingObjective::kLatency:
      return "latency";
    case MappingObjective::kEnergy:
      return "energy";
    case MappingObjective::kEdp:
      return "edp";
  }
  return "?";
}

std::optional<MappingObjective> parse_objective(const std::string& text) {
  if (text == "latency") return MappingObjective::kLatency;
  if (text == "energy") return MappingObjective::kEnergy;
  if (text == "edp") return MappingObjective::kEdp;
  return std::nullopt;
}

double objective_value(MappingObjective objective, double energy_pJ,
                       double latency_ns) {
  switch (objective) {
    case MappingObjective::kLatency:
      return latency_ns;
    case MappingObjective::kEnergy:
      return energy_pJ;
    case MappingObjective::kEdp:
      return energy_pJ * latency_ns;
  }
  return kInfeasible;
}

// ------------------------------------------------------------- CostMatrix

CostMatrix::CostMatrix(size_t num_gemms, size_t num_subarchs)
    : num_gemms_(num_gemms),
      num_subarchs_(num_subarchs),
      entries_(num_gemms * num_subarchs) {}

const CostMatrix::Entry& CostMatrix::at(size_t gemm, size_t subarch) const {
  if (gemm >= num_gemms_ || subarch >= num_subarchs_) {
    throw std::out_of_range("CostMatrix::at(" + std::to_string(gemm) + ", " +
                            std::to_string(subarch) + ") out of range");
  }
  return entries_[gemm * num_subarchs_ + subarch];
}

CostMatrix::Entry& CostMatrix::at(size_t gemm, size_t subarch) {
  return const_cast<Entry&>(
      static_cast<const CostMatrix&>(*this).at(gemm, subarch));
}

double CostMatrix::cost(size_t gemm, size_t subarch,
                        MappingObjective objective) const {
  const Entry& entry = at(gemm, subarch);
  if (!entry.feasible) return kInfeasible;
  const PairCost c = pair_cost(entry);
  return objective_value(objective, c.energy_pJ, c.latency_ns);
}

std::vector<size_t> CostMatrix::feasible_subarchs(size_t gemm) const {
  std::vector<size_t> out;
  for (size_t s = 0; s < num_subarchs_; ++s) {
    if (at(gemm, s).feasible) out.push_back(s);
  }
  return out;
}

// ----------------------------------------------------------------- Mapper

std::vector<std::string> Mapper::validate(const arch::Architecture&) const {
  return {};
}

// ------------------------------------------------------------- RuleMapper

RuleMapper::RuleMapper(MappingConfig config) : config_(std::move(config)) {}

std::vector<std::string> RuleMapper::validate(
    const arch::Architecture& architecture) const {
  return config_.validate(architecture);
}

Mapping RuleMapper::map(const MappingProblem& problem) const {
  if (problem.gemms == nullptr) {
    throw std::invalid_argument(
        "RuleMapper needs a MappingProblem with gemms");
  }
  Mapping mapping;
  mapping.assignment.reserve(problem.gemms->size());
  for (const auto& gemm : *problem.gemms) {
    mapping.assignment.push_back(config_.resolve(gemm));
  }
  return mapping;  // no costs consulted: predictions stay 0
}

// ----------------------------------------------------------- GreedyMapper

GreedyMapper::GreedyMapper(MappingObjective objective)
    : objective_(objective) {}

Mapping GreedyMapper::map(const MappingProblem& problem) const {
  require_costs(problem, "GreedyMapper");
  const CostMatrix& costs = *problem.costs;

  std::vector<size_t> assignment;
  assignment.reserve(costs.num_gemms());
  double energy = 0.0;
  double latency = 0.0;
  for (size_t g = 0; g < costs.num_gemms(); ++g) {
    size_t best = costs.num_subarchs();
    double best_cost = kInfeasible;
    for (size_t s = 0; s < costs.num_subarchs(); ++s) {
      const double c = costs.cost(g, s, objective_);
      if (c < best_cost) {
        best_cost = c;
        best = s;
      }
    }
    if (best == costs.num_subarchs()) throw_unmappable(problem, g);
    const PairCost c = pair_cost(costs.at(g, best));
    energy += c.energy_pJ;
    latency += c.latency_ns;
    assignment.push_back(best);
  }
  return finalize(objective_, std::move(assignment), energy, latency);
}

// ------------------------------------------------------------- BeamMapper

namespace {

/// A beam state: an assignment prefix with its objective-term sums.
struct BeamState {
  std::vector<size_t> assignment;
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
};

/// One expansion of a state by one sub-arch choice.  `valid` is false for
/// infeasible pairs (and for padding slots of the indexed write array).
struct Candidate {
  bool valid = false;
  size_t state = 0;    // index into the previous beam
  size_t subarch = 0;  // the appended choice
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
  double score = kInfeasible;
};

/// Strict total order: score, then the candidate's full assignment
/// (prefix, then appended sub-arch) lexicographically.  Distinct
/// candidates always differ in assignment, so the order — and therefore
/// the pruned beam — is unique regardless of evaluation or sort order.
bool candidate_less(const Candidate& a, const Candidate& b,
                    const std::vector<BeamState>& states) {
  if (a.score != b.score) return a.score < b.score;
  const auto& pa = states[a.state].assignment;
  const auto& pb = states[b.state].assignment;
  if (pa != pb) {
    return std::lexicographical_compare(pa.begin(), pa.end(), pb.begin(),
                                        pb.end());
  }
  return a.subarch < b.subarch;
}

}  // namespace

BeamMapper::BeamMapper(size_t width, MappingObjective objective,
                       int num_threads)
    : width_(width), objective_(objective), num_threads_(num_threads) {
  if (width_ == 0) {
    throw std::invalid_argument("BeamMapper width must be >= 1");
  }
  if (num_threads_ < 0) {
    throw std::invalid_argument("BeamMapper num_threads must be >= 0");
  }
}

Mapping BeamMapper::map(const MappingProblem& problem) const {
  require_costs(problem, "BeamMapper");
  const CostMatrix& costs = *problem.costs;
  const size_t S = costs.num_subarchs();

  const unsigned pool_threads =
      num_threads_ == 0 ? util::ThreadPool::hardware_threads()
                        : static_cast<unsigned>(num_threads_);
  // 1 thread means "serial": inline execution on the calling thread.
  util::ThreadPool pool(pool_threads <= 1 ? 0 : pool_threads);

  std::vector<BeamState> beam(1);  // the empty prefix
  std::vector<Candidate> candidates;
  std::vector<size_t> order;
  for (size_t g = 0; g < costs.num_gemms(); ++g) {
    // Expand every beam state by every sub-arch choice.  Each task owns an
    // indexed slot range, so the candidate array is identical for any
    // thread count; scoring a pair is pure arithmetic on the cost matrix.
    candidates.assign(beam.size() * S, Candidate{});
    {
      std::vector<std::future<void>> pending;
      pending.reserve(beam.size());
      for (size_t b = 0; b < beam.size(); ++b) {
        pending.push_back(pool.submit([&, b, g] {
          for (size_t s = 0; s < S; ++s) {
            const CostMatrix::Entry& entry = costs.at(g, s);
            if (!entry.feasible) continue;
            const PairCost c = pair_cost(entry);
            Candidate& cand = candidates[b * S + s];
            cand.valid = true;
            cand.state = b;
            cand.subarch = s;
            cand.energy_pJ = beam[b].energy_pJ + c.energy_pJ;
            cand.latency_ns = beam[b].latency_ns + c.latency_ns;
            cand.score =
                objective_value(objective_, cand.energy_pJ, cand.latency_ns);
          }
        }));
      }
      for (auto& f : pending) f.get();
    }

    order.clear();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].valid) order.push_back(i);
    }
    if (order.empty()) throw_unmappable(problem, g);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return candidate_less(candidates[a], candidates[b], beam);
    });
    if (order.size() > width_) order.resize(width_);

    std::vector<BeamState> next;
    next.reserve(order.size());
    for (size_t idx : order) {
      const Candidate& cand = candidates[idx];
      BeamState state;
      state.assignment = beam[cand.state].assignment;
      state.assignment.push_back(cand.subarch);
      state.energy_pJ = cand.energy_pJ;
      state.latency_ns = cand.latency_ns;
      next.push_back(std::move(state));
    }
    beam = std::move(next);
  }

  // The beam is sorted by (score, lexicographic assignment); front() is
  // the deterministic winner.  (With no GEMMs the empty prefix survives.)
  const BeamState& best = beam.front();
  return finalize(objective_, best.assignment, best.energy_pJ,
                  best.latency_ns);
}

// ------------------------------------------------------ ExhaustiveMapper

ExhaustiveMapper::ExhaustiveMapper(MappingObjective objective)
    : objective_(objective) {}

Mapping ExhaustiveMapper::map(const MappingProblem& problem) const {
  require_costs(problem, "ExhaustiveMapper");
  const CostMatrix& costs = *problem.costs;
  const size_t n = costs.num_gemms();
  const size_t S = costs.num_subarchs();

  constexpr size_t kMaxCandidates = size_t{1} << 20;
  double total = 1.0;
  for (size_t g = 0; g < n; ++g) total *= static_cast<double>(S);
  if (total > static_cast<double>(kMaxCandidates)) {
    throw std::invalid_argument(
        "ExhaustiveMapper: " + std::to_string(S) + "^" + std::to_string(n) +
        " candidate assignments exceed the enumeration limit; use "
        "BeamMapper");
  }

  // Every GEMM must be runnable somewhere, otherwise no assignment is
  // feasible; report the first stuck layer with per-sub-arch diagnostics.
  for (size_t g = 0; g < n; ++g) {
    if (costs.feasible_subarchs(g).empty()) throw_unmappable(problem, g);
  }

  // Mixed-radix counter with the last GEMM as the least significant digit:
  // enumeration order is lexicographic, so keeping the first strictly
  // better assignment yields the lexicographically smallest optimum — the
  // same tie-break BeamMapper uses.
  std::vector<size_t> digits(n, 0);
  std::vector<size_t> best_assignment;
  double best_score = kInfeasible;
  double best_energy = 0.0;
  double best_latency = 0.0;
  bool done = n == 0;
  while (!done) {
    double energy = 0.0;
    double latency = 0.0;
    bool feasible = true;
    for (size_t g = 0; g < n && feasible; ++g) {
      const CostMatrix::Entry& entry = costs.at(g, digits[g]);
      if (!entry.feasible) {
        feasible = false;
        break;
      }
      const PairCost c = pair_cost(entry);
      energy += c.energy_pJ;
      latency += c.latency_ns;
    }
    if (feasible) {
      const double score = objective_value(objective_, energy, latency);
      if (score < best_score) {
        best_score = score;
        best_assignment = digits;
        best_energy = energy;
        best_latency = latency;
      }
    }

    size_t pos = n;
    while (pos > 0) {
      --pos;
      if (++digits[pos] < S) break;
      digits[pos] = 0;
      if (pos == 0) done = true;
    }
  }

  return finalize(objective_, std::move(best_assignment), best_energy,
                  best_latency);
}

}  // namespace simphony::core
