#include "core/mapper.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <stdexcept>

#include "util/thread_pool.h"

namespace simphony::core {

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

/// Per-layer objective terms of one feasible cost-matrix entry.
struct PairCost {
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
};

PairCost pair_cost(const CostMatrix::Entry& entry) {
  return {entry.report.energy_pJ(), entry.report.runtime_ns()};
}

/// Throws when any layer has no feasible sub-arch, aggregating *every*
/// stuck layer's per-sub-arch diagnostics into one message — a model with
/// several unmappable layers reports them all at once instead of only the
/// first one found.
void require_mappable(const MappingProblem& problem) {
  const CostMatrix& costs = *problem.costs;
  std::string message;
  for (size_t g = 0; g < costs.num_gemms(); ++g) {
    if (!costs.feasible_subarchs(g).empty()) continue;
    if (!message.empty()) message += "\n";
    message += "no sub-architecture can run GEMM '" +
               (*problem.gemms)[g].name + "' (layer " + std::to_string(g) +
               ")";
    for (size_t s = 0; s < costs.num_subarchs(); ++s) {
      message += "; sub-arch " + std::to_string(s) + ": " +
                 costs.at(g, s).error;
    }
  }
  if (!message.empty()) throw std::invalid_argument(message);
}

void require_costs(const MappingProblem& problem, const char* who) {
  if (problem.gemms == nullptr) {
    throw std::invalid_argument(std::string(who) +
                                " needs a MappingProblem with gemms");
  }
  if (problem.costs == nullptr) {
    throw std::invalid_argument(std::string(who) +
                                " needs a MappingProblem with a cost matrix");
  }
}

Mapping finalize(MappingObjective objective, std::vector<size_t> assignment,
                 double energy_pJ, double latency_ns) {
  Mapping mapping;
  mapping.assignment = std::move(assignment);
  mapping.predicted_energy_pJ = energy_pJ;
  mapping.predicted_latency_ns = latency_ns;
  mapping.predicted_cost = objective_value(objective, energy_pJ, latency_ns);
  return mapping;
}

}  // namespace

const char* to_string(MappingObjective objective) {
  switch (objective) {
    case MappingObjective::kLatency:
      return "latency";
    case MappingObjective::kEnergy:
      return "energy";
    case MappingObjective::kEdp:
      return "edp";
  }
  return "?";
}

std::optional<MappingObjective> parse_objective(const std::string& text) {
  if (text == "latency") return MappingObjective::kLatency;
  if (text == "energy") return MappingObjective::kEnergy;
  if (text == "edp") return MappingObjective::kEdp;
  return std::nullopt;
}

double objective_value(MappingObjective objective, double energy_pJ,
                       double latency_ns) {
  switch (objective) {
    case MappingObjective::kLatency:
      return latency_ns;
    case MappingObjective::kEnergy:
      return energy_pJ;
    case MappingObjective::kEdp:
      return energy_pJ * latency_ns;
  }
  return kInfeasible;
}

// ------------------------------------------------------------- CostMatrix

CostMatrix::CostMatrix(size_t num_gemms, size_t num_subarchs)
    : num_gemms_(num_gemms),
      num_subarchs_(num_subarchs),
      entries_(num_gemms * num_subarchs) {}

const CostMatrix::Entry& CostMatrix::at(size_t gemm, size_t subarch) const {
  if (gemm >= num_gemms_ || subarch >= num_subarchs_) {
    throw std::out_of_range("CostMatrix::at(" + std::to_string(gemm) + ", " +
                            std::to_string(subarch) + ") out of range");
  }
  return entries_[gemm * num_subarchs_ + subarch];
}

CostMatrix::Entry& CostMatrix::at(size_t gemm, size_t subarch) {
  return const_cast<Entry&>(
      static_cast<const CostMatrix&>(*this).at(gemm, subarch));
}

double CostMatrix::cost(size_t gemm, size_t subarch,
                        MappingObjective objective) const {
  const Entry& entry = at(gemm, subarch);
  if (!entry.feasible) return kInfeasible;
  const PairCost c = pair_cost(entry);
  return objective_value(objective, c.energy_pJ, c.latency_ns);
}

std::vector<size_t> CostMatrix::feasible_subarchs(size_t gemm) const {
  std::vector<size_t> out;
  for (size_t s = 0; s < num_subarchs_; ++s) {
    if (at(gemm, s).feasible) out.push_back(s);
  }
  return out;
}

// -------------------------------------------------------- CostMatrixCache

std::shared_ptr<const CostMatrix::Entry> CostMatrixCache::find(
    const Key& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return it->second;
}

std::shared_ptr<const CostMatrix::Entry> CostMatrixCache::insert(
    const Key& key, CostMatrix::Entry entry) {
  auto stored = std::make_shared<const CostMatrix::Entry>(std::move(entry));
  std::lock_guard<std::mutex> lock(mutex_);
  // First writer wins: concurrent writers of one key carry bit-identical
  // entries (same key => same simulation inputs), so which one lands is
  // immaterial for determinism.
  return entries_.try_emplace(key, std::move(stored)).first->second;
}

CostMatrixCache::Stats CostMatrixCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t CostMatrixCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void CostMatrixCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_ = Stats{};
}

// ----------------------------------------------------------------- Mapper

std::vector<std::string> Mapper::validate(const arch::Architecture&) const {
  return {};
}

// ------------------------------------------------------------- RuleMapper

RuleMapper::RuleMapper(MappingConfig config) : config_(std::move(config)) {}

std::vector<std::string> RuleMapper::validate(
    const arch::Architecture& architecture) const {
  return config_.validate(architecture);
}

Mapping RuleMapper::map(const MappingProblem& problem) const {
  if (problem.gemms == nullptr) {
    throw std::invalid_argument(
        "RuleMapper needs a MappingProblem with gemms");
  }
  Mapping mapping;
  mapping.assignment.reserve(problem.gemms->size());
  for (const auto& gemm : *problem.gemms) {
    mapping.assignment.push_back(config_.resolve(gemm));
  }
  return mapping;  // no costs consulted: predictions stay 0
}

// ----------------------------------------------------------- GreedyMapper

GreedyMapper::GreedyMapper(MappingObjective objective)
    : objective_(objective) {}

Mapping GreedyMapper::map(const MappingProblem& problem) const {
  require_costs(problem, "GreedyMapper");
  require_mappable(problem);
  const CostMatrix& costs = *problem.costs;

  std::vector<size_t> assignment;
  assignment.reserve(costs.num_gemms());
  double energy = 0.0;
  double latency = 0.0;
  for (size_t g = 0; g < costs.num_gemms(); ++g) {
    size_t best = costs.num_subarchs();
    double best_cost = kInfeasible;
    for (size_t s = 0; s < costs.num_subarchs(); ++s) {
      const double c = costs.cost(g, s, objective_);
      if (c < best_cost) {
        best_cost = c;
        best = s;
      }
    }
    // require_mappable guarantees a feasible sub-arch per layer.
    const PairCost c = pair_cost(costs.at(g, best));
    energy += c.energy_pJ;
    latency += c.latency_ns;
    assignment.push_back(best);
  }
  return finalize(objective_, std::move(assignment), energy, latency);
}

// ------------------------------------------------------------- BeamMapper

namespace {

/// A beam state: an assignment prefix with its objective-term sums.
struct BeamState {
  std::vector<size_t> assignment;
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
};

/// One expansion of a state by one sub-arch choice.  `valid` is false for
/// infeasible pairs (and for padding slots of the indexed write array).
struct Candidate {
  bool valid = false;
  size_t state = 0;    // index into the previous beam
  size_t subarch = 0;  // the appended choice
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
  double score = kInfeasible;
};

/// Strict total order: score, then the candidate's full assignment
/// (prefix, then appended sub-arch) lexicographically.  Distinct
/// candidates always differ in assignment, so the order — and therefore
/// the pruned beam — is unique regardless of evaluation or sort order.
bool candidate_less(const Candidate& a, const Candidate& b,
                    const std::vector<BeamState>& states) {
  if (a.score != b.score) return a.score < b.score;
  const auto& pa = states[a.state].assignment;
  const auto& pb = states[b.state].assignment;
  if (pa != pb) {
    return std::lexicographical_compare(pa.begin(), pa.end(), pb.begin(),
                                        pb.end());
  }
  return a.subarch < b.subarch;
}

}  // namespace

BeamMapper::BeamMapper(size_t width, MappingObjective objective,
                       int num_threads)
    : width_(width), objective_(objective), num_threads_(num_threads) {
  if (width_ == 0) {
    throw std::invalid_argument("BeamMapper width must be >= 1");
  }
  if (num_threads_ < 0) {
    throw std::invalid_argument("BeamMapper num_threads must be >= 0");
  }
}

Mapping BeamMapper::map(const MappingProblem& problem) const {
  require_costs(problem, "BeamMapper");
  require_mappable(problem);
  const CostMatrix& costs = *problem.costs;
  const size_t S = costs.num_subarchs();

  // Engine-wide thread-count convention (0 = one worker per hardware
  // thread, 1 = serial inline execution).
  util::ThreadPool pool(util::ThreadPool::workers_for(
      num_threads_, std::numeric_limits<size_t>::max()));

  std::vector<BeamState> beam(1);  // the empty prefix
  std::vector<Candidate> candidates;
  std::vector<size_t> order;
  for (size_t g = 0; g < costs.num_gemms(); ++g) {
    // Expand every beam state by every sub-arch choice.  Each task owns an
    // indexed slot range, so the candidate array is identical for any
    // thread count; scoring a pair is pure arithmetic on the cost matrix.
    candidates.assign(beam.size() * S, Candidate{});
    {
      std::vector<std::future<void>> pending;
      pending.reserve(beam.size());
      for (size_t b = 0; b < beam.size(); ++b) {
        pending.push_back(pool.submit([&, b, g] {
          for (size_t s = 0; s < S; ++s) {
            const CostMatrix::Entry& entry = costs.at(g, s);
            if (!entry.feasible) continue;
            const PairCost c = pair_cost(entry);
            Candidate& cand = candidates[b * S + s];
            cand.valid = true;
            cand.state = b;
            cand.subarch = s;
            cand.energy_pJ = beam[b].energy_pJ + c.energy_pJ;
            cand.latency_ns = beam[b].latency_ns + c.latency_ns;
            cand.score =
                objective_value(objective_, cand.energy_pJ, cand.latency_ns);
          }
        }));
      }
      for (auto& f : pending) f.get();
    }

    order.clear();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].valid) order.push_back(i);
    }
    if (order.empty()) {
      // Unreachable: require_mappable guarantees every layer expands at
      // least one candidate from a non-empty beam.
      throw std::logic_error("BeamMapper: beam emptied at layer " +
                             std::to_string(g));
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return candidate_less(candidates[a], candidates[b], beam);
    });
    if (order.size() > width_) order.resize(width_);

    std::vector<BeamState> next;
    next.reserve(order.size());
    for (size_t idx : order) {
      const Candidate& cand = candidates[idx];
      BeamState state;
      state.assignment = beam[cand.state].assignment;
      state.assignment.push_back(cand.subarch);
      state.energy_pJ = cand.energy_pJ;
      state.latency_ns = cand.latency_ns;
      next.push_back(std::move(state));
    }
    beam = std::move(next);
  }

  // The beam is sorted by (score, lexicographic assignment); front() is
  // the deterministic winner.  (With no GEMMs the empty prefix survives.)
  const BeamState& best = beam.front();
  return finalize(objective_, best.assignment, best.energy_pJ,
                  best.latency_ns);
}

// ----------------------------------------------------- BranchBoundMapper

namespace {

/// State shared by every subtree of one branch-and-bound search.
struct BnbContext {
  const CostMatrix* costs = nullptr;
  MappingObjective objective = MappingObjective::kEdp;
  size_t n = 0;
  size_t S = 0;
  /// suffix_min_*[g] = sum over layers k >= g of the feasible minimum of
  /// that component (suffix_min_*[n] = 0).
  std::vector<double> suffix_min_energy;
  std::vector<double> suffix_min_latency;
};

/// A full-assignment candidate: score + the totals it was scored from.
struct BnbBest {
  bool valid = false;
  double score = kInfeasible;
  double energy_pJ = 0.0;
  double latency_ns = 0.0;
  std::vector<size_t> assignment;
};

/// The ExhaustiveMapper tie-break: lower score, then lexicographically
/// smaller assignment.
bool bnb_better(double score, const std::vector<size_t>& assignment,
                const BnbBest& than) {
  if (!than.valid) return true;
  if (score != than.score) return score < than.score;
  return assignment < than.assignment;
}

/// Lower bound on the score of any completion of a prefix with sums
/// (energy, latency) at `depth`.  Latency/energy are additive, so prefix
/// + suffix-of-minima bounds the relaxation that picks each remaining
/// layer independently; for EDP the component-wise minima bound applies
/// because EDP is monotone in both totals and every completion satisfies
/// E >= E_lb and L >= L_lb.
///
/// The raw value is admissible only in real arithmetic: the suffix sums
/// accumulate right-to-left while a DFS completion sums left-to-right,
/// so non-associative floating-point addition (and the EDP product) can
/// push the computed bound a few ulps above a completion's true score.
/// The caller therefore prunes against a slightly deflated bound — see
/// bnb_safe_bound — trading ulp-marginal extra exploration for the
/// bit-for-bit ExhaustiveMapper equivalence the class guarantees.
double bnb_bound(const BnbContext& ctx, size_t depth, double energy,
                 double latency) {
  switch (ctx.objective) {
    case MappingObjective::kLatency:
      return latency + ctx.suffix_min_latency[depth];
    case MappingObjective::kEnergy:
      return energy + ctx.suffix_min_energy[depth];
    case MappingObjective::kEdp:
      return (energy + ctx.suffix_min_energy[depth]) *
             (latency + ctx.suffix_min_latency[depth]);
  }
  return 0.0;
}

/// Deflates a bound by a relative margin comfortably above the
/// accumulated rounding error of an n-term sum (or product of two such
/// sums): error <= ~(n + 2) * eps relative, margin = 1e-12 covers
/// thousands of layers.  Always moves toward -infinity, so pruning only
/// ever gets more conservative, never unsound.
double bnb_safe_bound(double bound) {
  constexpr double kSlack = 1e-12;
  return bound - std::abs(bound) * kSlack;
}

/// Lock-free monotone minimum on the shared pruning bound.  The bound only
/// ever tightens, and pruning is strict (> only), so the timing of updates
/// affects how much work is skipped but never which mapping wins.
void bnb_relax(std::atomic<double>& bound, double score) {
  double current = bound.load(std::memory_order_relaxed);
  while (score < current &&
         !bound.compare_exchange_weak(current, score,
                                      std::memory_order_relaxed)) {
  }
}

/// Serial DFS under one subtree.  `path` holds the assignment prefix;
/// prefix sums accumulate left to right, which keeps the floating-point
/// summation order identical to ExhaustiveMapper's per-candidate loop.
void bnb_dfs(const BnbContext& ctx, size_t depth, double energy,
             double latency, std::vector<size_t>& path, BnbBest& local,
             std::atomic<double>& bound, BranchBoundMapper::Stats& stats) {
  if (bnb_safe_bound(bnb_bound(ctx, depth, energy, latency)) >
      bound.load(std::memory_order_relaxed)) {
    ++stats.pruned;
    return;
  }
  ++stats.visited;  // expanded nodes only — disjoint from pruned
  if (depth == ctx.n) {
    const double score = objective_value(ctx.objective, energy, latency);
    if (bnb_better(score, path, local)) {
      local.valid = true;
      local.score = score;
      local.energy_pJ = energy;
      local.latency_ns = latency;
      local.assignment = path;
      bnb_relax(bound, score);
    }
    return;
  }
  for (size_t s = 0; s < ctx.S; ++s) {
    const CostMatrix::Entry& entry = ctx.costs->at(depth, s);
    if (!entry.feasible) continue;
    const PairCost c = pair_cost(entry);
    path.push_back(s);
    bnb_dfs(ctx, depth + 1, energy + c.energy_pJ, latency + c.latency_ns,
            path, local, bound, stats);
    path.pop_back();
  }
}

}  // namespace

BranchBoundMapper::BranchBoundMapper(MappingObjective objective,
                                     int num_threads)
    : objective_(objective), num_threads_(num_threads) {
  if (num_threads_ < 0) {
    throw std::invalid_argument(
        "BranchBoundMapper num_threads must be >= 0");
  }
}

Mapping BranchBoundMapper::map(const MappingProblem& problem) const {
  return map_counted(problem, nullptr);
}

Mapping BranchBoundMapper::map_counted(const MappingProblem& problem,
                                       Stats* stats) const {
  require_costs(problem, "BranchBoundMapper");
  require_mappable(problem);
  const CostMatrix& costs = *problem.costs;

  BnbContext ctx;
  ctx.costs = &costs;
  ctx.objective = objective_;
  ctx.n = costs.num_gemms();
  ctx.S = costs.num_subarchs();
  ctx.suffix_min_energy.assign(ctx.n + 1, 0.0);
  ctx.suffix_min_latency.assign(ctx.n + 1, 0.0);
  for (size_t g = ctx.n; g > 0; --g) {
    double min_energy = kInfeasible;
    double min_latency = kInfeasible;
    for (size_t s = 0; s < ctx.S; ++s) {
      const CostMatrix::Entry& entry = costs.at(g - 1, s);
      if (!entry.feasible) continue;
      const PairCost c = pair_cost(entry);
      min_energy = std::min(min_energy, c.energy_pJ);
      min_latency = std::min(min_latency, c.latency_ns);
    }
    ctx.suffix_min_energy[g - 1] = min_energy + ctx.suffix_min_energy[g];
    ctx.suffix_min_latency[g - 1] = min_latency + ctx.suffix_min_latency[g];
  }

  Stats local_stats;
  local_stats.total_assignments =
      std::pow(static_cast<double>(ctx.S), static_cast<double>(ctx.n));

  // Incumbent seed: GreedyMapper's per-layer argmin (optimal for
  // additive objectives, a strong start for EDP) — reused outright so
  // its tie-break and left-to-right summation order can never drift
  // from the pruning argument that relies on them.  The seed's score
  // enters the shared pruning bound; the assignment itself joins the
  // final reduction, though the DFS always re-finds it (no ancestor of
  // an incumbent-score leaf can exceed the bound, and pruning is
  // strict).
  BnbBest seed;
  {
    Mapping greedy = GreedyMapper(objective_).map(problem);
    seed.valid = true;
    seed.score = greedy.predicted_cost;
    seed.energy_pJ = greedy.predicted_energy_pJ;
    seed.latency_ns = greedy.predicted_latency_ns;
    seed.assignment = std::move(greedy.assignment);
  }
  std::atomic<double> bound{seed.score};

  // Engine-wide thread-count convention (0 = one worker per hardware
  // thread; workers_for returns 0 — inline — for a serial request).
  const unsigned pool_threads = util::ThreadPool::workers_for(
      num_threads_, std::numeric_limits<size_t>::max());

  BnbBest winner = seed;
  if (pool_threads == 0 || ctx.n == 0) {
    BnbBest local;
    std::vector<size_t> path;
    path.reserve(ctx.n);
    bnb_dfs(ctx, 0, 0.0, 0.0, path, local, bound, local_stats);
    if (local.valid &&
        bnb_better(local.score, local.assignment, winner)) {
      winner = std::move(local);
    }
  } else {
    // Split the tree at a fixed small depth into its lex-ordered feasible
    // prefixes; each prefix's subtree runs as one pool task.  Workers
    // share only the monotone pruning bound, so each subtree's winner is
    // independent of scheduling, and the reduction below is a pure
    // (score, lexicographic) fold — bit-identical for any thread count.
    size_t depth = 0;
    size_t width = 1;
    while (depth < ctx.n && width < 4 * static_cast<size_t>(pool_threads) &&
           width <= 4096 / std::max<size_t>(ctx.S, 1)) {
      ++depth;
      width *= ctx.S;
    }
    struct SubtreeRoot {
      std::vector<size_t> path;
      double energy_pJ = 0.0;
      double latency_ns = 0.0;
    };
    std::vector<SubtreeRoot> roots;
    {
      SubtreeRoot root;
      std::vector<SubtreeRoot> frontier{root};
      for (size_t level = 0; level < depth; ++level) {
        std::vector<SubtreeRoot> next;
        next.reserve(frontier.size() * ctx.S);
        for (const SubtreeRoot& r : frontier) {
          for (size_t s = 0; s < ctx.S; ++s) {
            const CostMatrix::Entry& entry = costs.at(level, s);
            if (!entry.feasible) continue;
            const PairCost c = pair_cost(entry);
            SubtreeRoot child;
            child.path = r.path;
            child.path.push_back(s);
            child.energy_pJ = r.energy_pJ + c.energy_pJ;
            child.latency_ns = r.latency_ns + c.latency_ns;
            next.push_back(std::move(child));
          }
        }
        frontier = std::move(next);
      }
      roots = std::move(frontier);
    }

    // Everything the tasks touch must outlive the pool: workers are only
    // joined by the pool's destructor, so these live before it in case an
    // exception unwinds this block mid-submission.
    std::vector<BnbBest> locals(roots.size());
    std::vector<Stats> task_stats(roots.size());
    std::vector<std::future<void>> pending;
    util::ThreadPool pool(pool_threads);
    pending.reserve(roots.size());
    for (size_t r = 0; r < roots.size(); ++r) {
      pending.push_back(pool.submit([&, r] {
        std::vector<size_t> path = roots[r].path;
        path.reserve(ctx.n);
        bnb_dfs(ctx, depth, roots[r].energy_pJ, roots[r].latency_ns, path,
                locals[r], bound, task_stats[r]);
      }));
    }
    for (auto& f : pending) f.get();

    for (size_t r = 0; r < roots.size(); ++r) {
      local_stats.visited += task_stats[r].visited;
      local_stats.pruned += task_stats[r].pruned;
      if (locals[r].valid &&
          bnb_better(locals[r].score, locals[r].assignment, winner)) {
        winner = std::move(locals[r]);
      }
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return finalize(objective_, std::move(winner.assignment),
                  winner.energy_pJ, winner.latency_ns);
}

// ------------------------------------------------------ ExhaustiveMapper

ExhaustiveMapper::ExhaustiveMapper(MappingObjective objective)
    : objective_(objective) {}

Mapping ExhaustiveMapper::map(const MappingProblem& problem) const {
  require_costs(problem, "ExhaustiveMapper");
  const CostMatrix& costs = *problem.costs;
  const size_t n = costs.num_gemms();
  const size_t S = costs.num_subarchs();

  constexpr size_t kMaxCandidates = size_t{1} << 20;
  double total = 1.0;
  for (size_t g = 0; g < n; ++g) total *= static_cast<double>(S);
  if (total > static_cast<double>(kMaxCandidates)) {
    throw std::invalid_argument(
        "ExhaustiveMapper: " + std::to_string(S) + "^" + std::to_string(n) +
        " candidate assignments exceed the enumeration limit; use "
        "BeamMapper");
  }

  // Every GEMM must be runnable somewhere, otherwise no assignment is
  // feasible; report every stuck layer with per-sub-arch diagnostics.
  require_mappable(problem);

  // Mixed-radix counter with the last GEMM as the least significant digit:
  // enumeration order is lexicographic, so keeping the first strictly
  // better assignment yields the lexicographically smallest optimum — the
  // same tie-break BeamMapper uses.
  std::vector<size_t> digits(n, 0);
  std::vector<size_t> best_assignment;
  double best_score = kInfeasible;
  double best_energy = 0.0;
  double best_latency = 0.0;
  bool done = n == 0;
  while (!done) {
    double energy = 0.0;
    double latency = 0.0;
    bool feasible = true;
    for (size_t g = 0; g < n && feasible; ++g) {
      const CostMatrix::Entry& entry = costs.at(g, digits[g]);
      if (!entry.feasible) {
        feasible = false;
        break;
      }
      const PairCost c = pair_cost(entry);
      energy += c.energy_pJ;
      latency += c.latency_ns;
    }
    if (feasible) {
      const double score = objective_value(objective_, energy, latency);
      if (score < best_score) {
        best_score = score;
        best_assignment = digits;
        best_energy = energy;
        best_latency = latency;
      }
    }

    size_t pos = n;
    while (pos > 0) {
      --pos;
      if (++digits[pos] < S) break;
      digits[pos] = 0;
      if (pos == 0) done = true;
    }
  }

  return finalize(objective_, std::move(best_assignment), best_energy,
                  best_latency);
}

}  // namespace simphony::core
