// The simphonyd protocol layer: newline-delimited JSON (NDJSON) request/
// response framing over any stream pair, served by one shared
// core::Engine.
//
// One protocol message per line, compact JSON (never contains a raw
// newline).  Requests are envelopes:
//
//   {"op": "simulate"|"explore"|"ping"|"stats"|"shutdown",
//    "id": <any JSON value, echoed back verbatim>,      (optional)
//    "request": {...},         (SimulateRequest/ExploreRequest JSON)
//    "progress": true}         (optional: stream progress events)
//
// Responses carry "status":
//
//   {"status": "ok", "id": ..., "result": {...}, "cache": {...}?}
//   {"status": "error", "id": ..., "error": "diagnostic"}
//   {"status": "busy", "id": ..., "retry_after_ms": N}
//   {"status": "progress", "id": ..., "completed": N, "total": N}
//
// "result" is byte-for-byte the document the one-shot CLI prints with
// --json (re-indent the compact form with util::Json::dump(2) to
// compare).  "cache" is the per-request cost-cache delta when a cache
// was attached.  Progress events (when requested) interleave before the
// final response on the same connection; the final line for a given
// request is always a terminal status (ok|error|busy).
//
// Error handling is per-line: a malformed line yields one "error"
// response and the connection stays usable for the next line.  A
// "shutdown" request asks the whole server to stop accepting and drain
// (the response is sent before the listener winds down).
//
// The transport (util/socket.h) is separated from the protocol: tests
// drive handle_connection() directly over in-memory streams.
#pragma once

#include <atomic>
#include <functional>
#include <string>

#include "core/engine.h"
#include "util/binio.h"
#include "util/socket.h"

namespace simphony::core {

/// NDJSON server over one Engine.  Thread-safe per instance: serve()
/// runs one accept loop and spawns a thread per connection, all sharing
/// the Engine (whose admission queue provides the backpressure).
class Server {
 public:
  struct Options {
    /// How long each accept() poll waits before re-checking stop
    /// conditions — the latency bound on graceful shutdown.
    int poll_interval_ms = 200;
    /// External stop condition checked between accept polls (e.g.
    /// ScopedSignalGuard::interrupted); serve() returns when it holds.
    std::function<bool()> should_stop;
    /// Diagnostic sink (connection errors, shutdown requests); defaults
    /// to dropping the messages.
    std::function<void(const std::string&)> log;
  };

  /// Binds and listens immediately (throws util::IoError on failure).
  /// The resolved address — e.g. the kernel-assigned port for tcp port
  /// 0 — is available via address() right after construction.
  Server(Engine& engine, const util::SocketAddress& address);
  Server(Engine& engine, const util::SocketAddress& address,
         Options options);
  /// Joins every connection thread (serve() must have returned).
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] const util::SocketAddress& address() const {
    return listener_.address();
  }

  /// Accept loop: blocks until request_stop(), a client "shutdown", or
  /// Options::should_stop.  Joins all connection threads, then drains
  /// the engine before returning — after serve(), no evaluation is in
  /// flight.
  void serve();

  /// Asks serve() to wind down (callable from any thread / a response
  /// to an external event).
  void request_stop() { stop_.store(true); }

  /// The protocol core, transport-free: reads envelope lines from `in`
  /// until end-of-stream, writing one (or more, with progress) response
  /// lines per request to `out`.  Returns true when a "shutdown"
  /// request was processed.  Tests call this directly over memory
  /// streams; serve() calls it per accepted socket.
  bool handle_connection(util::InputStream& in, util::OutputStream& out);

 private:
  Engine* engine_;
  Options options_;
  util::ServerSocket listener_;
  std::atomic<bool> stop_{false};
};

}  // namespace simphony::core
