#include "core/dse.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/fingerprint.h"
#include "core/strategy.h"
#include "util/binio.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/gemm.h"

namespace simphony::core {

size_t ArchParamsHash::operator()(const arch::ArchParams& p) const {
  size_t seed = 0;
  util::hash_combine_value(seed, p.tiles);
  util::hash_combine_value(seed, p.cores_per_tile);
  util::hash_combine_value(seed, p.core_height);
  util::hash_combine_value(seed, p.core_width);
  util::hash_combine_value(seed, p.wavelengths);
  util::hash_combine_value(seed, p.clock_GHz);
  util::hash_combine_value(seed, p.input_bits);
  util::hash_combine_value(seed, p.weight_bits);
  util::hash_combine_value(seed, p.output_bits);
  return seed;
}

namespace {

std::vector<int> axis_or(const std::vector<int>& axis, int fallback) {
  return axis.empty() ? std::vector<int>{fallback} : axis;
}

void require_positive(const std::vector<int>& axis, const char* name) {
  for (int v : axis) {
    if (v <= 0) {
      throw std::invalid_argument(std::string(name) +
                                  " values must be positive");
    }
  }
}

/// The candidate values of the seven axes in canonical order, with the
/// "keep base" sentinel semantics shared by grid enumeration and the
/// samplers.  0 marks "axis not swept" (rejected above as a user value)
/// for the size/width/bits axes: the base core_height/core_width pair is
/// kept as-is so a non-square base architecture survives other sweeps,
/// and per-layer operand/output bits stay with the workload.
struct ResolvedAxes {
  std::vector<int> tiles;
  std::vector<int> cores;
  std::vector<int> sizes;
  std::vector<int> widths;
  std::vector<int> wavelengths;
  std::vector<int> in_bits;
  std::vector<int> out_bits;
};

ResolvedAxes resolve_axes(const DseSpace& space) {
  require_positive(space.core_sizes, "core_sizes");
  require_positive(space.core_widths, "core_widths");
  require_positive(space.input_bits, "input_bits");
  require_positive(space.output_bits, "output_bits");
  return ResolvedAxes{axis_or(space.tiles, space.base.tiles),
                      axis_or(space.cores_per_tile, space.base.cores_per_tile),
                      axis_or(space.core_sizes, 0),
                      axis_or(space.core_widths, 0),
                      axis_or(space.wavelengths, space.base.wavelengths),
                      axis_or(space.input_bits, 0),
                      axis_or(space.output_bits, 0)};
}

arch::ArchParams make_point(const DseSpace& space, int tiles, int cores,
                            int hw, int width, int lambda, int bits,
                            int out_bits) {
  arch::ArchParams p = space.base;
  p.tiles = tiles;
  p.cores_per_tile = cores;
  if (hw > 0) {
    p.core_height = hw;
    p.core_width = hw;
  }
  if (width > 0) p.core_width = width;  // decoupled W wins over H = W
  p.wavelengths = lambda;
  if (bits > 0) {
    p.input_bits = bits;
    p.weight_bits = bits;
  }  // unswept: keep base input/weight bits, which may differ
  if (out_bits > 0) p.output_bits = out_bits;
  return p;
}

/// Materializes one design point's architecture (one sub-architecture per
/// template, all at `params`) and wraps it in a Simulator sharing the
/// cross-point cost cache.  This construction is the per-point cost the
/// batched overloads amortize across models.
Simulator make_point_simulator(
    const std::vector<std::shared_ptr<const arch::PtcTemplate>>&
        ptc_templates,
    const devlib::DeviceLibrary& lib, const arch::ArchParams& params,
    CostMatrixCache* cost_cache) {
  std::string arch_name = "dse-" + ptc_templates.front()->name;
  for (size_t t = 1; t < ptc_templates.size(); ++t) {
    arch_name += "+" + ptc_templates[t]->name;
  }
  arch::Architecture system(std::move(arch_name));
  for (const auto& ptc_template : ptc_templates) {
    system.add_subarch(arch::SubArchitecture(ptc_template, params, lib));
  }
  SimulationOptions sim_options;
  sim_options.cost_cache = cost_cache;
  return Simulator(std::move(system), sim_options);
}

/// Runs one model's GEMMs on a point's Simulator, applying the swept bit
/// axes (only an explicitly swept axis overrides the per-layer operand
/// resolutions the model carries).  Totals-only: the DSE objective needs
/// just the aggregate figures, so the per-layer reports are never
/// materialized (simulate_gemms_totals accumulates straight off the cost
/// matrix, bit-identically to the full-report path).  `base_gemm_keys`
/// (optional) are precomputed fingerprints of `base_gemms`; they are only
/// consulted when no bit axis rewrites the GEMMs.
ModelTotals simulate_point_model(
    const Simulator& sim, const std::vector<workload::GemmWorkload>& base_gemms,
    const arch::ArchParams& params, bool override_input_bits,
    bool override_output_bits, const Mapper* mapper,
    const uint64_t* base_gemm_keys) {
  const RuleMapper subarch0{MappingConfig(0)};  // the pre-mapper behavior
  const Mapper& chosen_mapper =
      mapper != nullptr ? *mapper : static_cast<const Mapper&>(subarch0);

  if (!override_input_bits && !override_output_bits) {
    return sim.simulate_gemms_totals(base_gemms, chosen_mapper, nullptr,
                                     base_gemm_keys);
  }
  std::vector<workload::GemmWorkload> gemms = base_gemms;
  for (auto& gemm : gemms) {
    if (override_input_bits) {
      gemm.input_bits = params.input_bits;
      gemm.weight_bits = params.weight_bits;
    }
    if (override_output_bits) gemm.output_bits = params.output_bits;
  }
  // The rewrite changes the GEMMs' fingerprints: recompute, never reuse.
  return sim.simulate_gemms_totals(gemms, chosen_mapper, nullptr, nullptr);
}

/// Costs one parameter point.  All heavyweight inputs (templates, library,
/// extracted GEMMs) are shared immutably across concurrent callers; the
/// only per-point allocations are the materialized sub-architectures and a
/// vector of small GemmWorkload records whose weight tensors still point
/// into the caller's Model.  With a mapper set, the point is costed under
/// the layer-to-sub-arch assignment that mapper picks for it; otherwise
/// everything runs on sub-arch 0 (the pre-mapper behavior).
DsePoint evaluate_point(
    const std::vector<std::shared_ptr<const arch::PtcTemplate>>&
        ptc_templates,
    const devlib::DeviceLibrary& lib,
    const std::vector<workload::GemmWorkload>& base_gemms,
    const arch::ArchParams& params, bool override_input_bits,
    bool override_output_bits, const Mapper* mapper,
    CostMatrixCache* cost_cache, const uint64_t* base_gemm_keys,
    bool want_p99) {
  const Simulator sim =
      make_point_simulator(ptc_templates, lib, params, cost_cache);
  const ModelTotals totals =
      simulate_point_model(sim, base_gemms, params, override_input_bits,
                           override_output_bits, mapper, base_gemm_keys);

  DsePoint point;
  point.params = params;
  point.energy_pJ = totals.energy_pJ();
  point.latency_ns = totals.runtime_ns;
  point.area_mm2 = totals.total_area_mm2();
  point.power_W = totals.average_power_W();
  point.tops = totals.tops();
  if (want_p99) {
    // Single-model stream: the single-service-time tail formula.
    const double latency = totals.runtime_ns;
    const double one = 1.0;
    point.p99_latency_ns = p99_latency_ns(&latency, &one, 1);
  }
  return point;
}

/// Costs one parameter point for a whole WorkloadSet: the architecture is
/// materialized ONCE and every model runs on it (per-model memory sizing
/// and mapping search, exactly the simulate_point_model flow — per-model
/// metrics are bit-identical to a single-model explore of that model).
/// The point's objective metrics are the aggregate fold over the batch;
/// area is the per-model max (one chip must fit every model's memory
/// sizing).
DsePoint evaluate_batch_point(
    const std::vector<std::shared_ptr<const arch::PtcTemplate>>&
        ptc_templates,
    const devlib::DeviceLibrary& lib, const WorkloadSet& workloads,
    const arch::ArchParams& params, bool override_input_bits,
    bool override_output_bits, const Mapper* mapper,
    CostMatrixCache* cost_cache, BatchAggregate aggregate, bool want_p99) {
  const Simulator sim =
      make_point_simulator(ptc_templates, lib, params, cost_cache);

  DsePoint point;
  point.params = params;
  point.per_model.reserve(workloads.size());
  std::vector<BatchModelSlice> slices;
  slices.reserve(workloads.size());
  for (size_t i = 0; i < workloads.size(); ++i) {
    const WorkloadSet::Entry& entry = workloads.at(i);
    const ModelTotals totals =
        simulate_point_model(sim, entry.gemms, params, override_input_bits,
                             override_output_bits, mapper,
                             entry.gemm_fingerprints.data());
    DseModelMetrics metrics;
    metrics.model = entry.name;
    metrics.weight = entry.weight;
    metrics.energy_pJ = totals.energy_pJ();
    metrics.latency_ns = totals.runtime_ns;
    metrics.area_mm2 = totals.total_area_mm2();
    metrics.power_W = totals.average_power_W();
    metrics.tops = totals.tops();
    BatchModelSlice slice;
    slice.energy_pJ = metrics.energy_pJ;
    slice.latency_ns = metrics.latency_ns;
    slice.area_mm2 = metrics.area_mm2;
    slice.macs = totals.macs;
    slice.weight = entry.weight;
    slice.power_W = metrics.power_W;
    slice.tops = metrics.tops;
    slices.push_back(slice);
    point.per_model.push_back(std::move(metrics));
  }
  const BatchFold fold = fold_batch(aggregate, slices);
  point.energy_pJ = fold.energy_pJ;
  point.latency_ns = fold.latency_ns;
  point.area_mm2 = fold.area_mm2;
  point.power_W = fold.power_W;
  point.tops = fold.tops;
  if (want_p99) {
    // Tail latency of the batch as an arrival mix: each model is a job
    // class whose service time is its end-to-end latency and whose arrival
    // share is its batch weight (M/G/1 approximation, see core/metrics.h).
    std::vector<double> latencies;
    std::vector<double> weights;
    latencies.reserve(slices.size());
    weights.reserve(slices.size());
    for (const BatchModelSlice& slice : slices) {
      latencies.push_back(slice.latency_ns);
      weights.push_back(slice.weight);
    }
    point.p99_latency_ns = p99_latency_ns(latencies, weights);
  }
  return point;
}

}  // namespace

std::vector<arch::ArchParams> DseSpace::enumerate() const {
  const ResolvedAxes axes = resolve_axes(*this);
  std::vector<arch::ArchParams> grid;
  for (int tiles : axes.tiles) {
    for (int cores : axes.cores) {
      for (int hw : axes.sizes) {
        for (int width : axes.widths) {
          for (int lambda : axes.wavelengths) {
            for (int bits : axes.in_bits) {
              for (int out_bits : axes.out_bits) {
                grid.push_back(make_point(*this, tiles, cores, hw, width,
                                          lambda, bits, out_bits));
              }
            }
          }
        }
      }
    }
  }
  return grid;
}

size_t DseSpace::size() const {
  const ResolvedAxes axes = resolve_axes(*this);
  size_t total = 1;
  for (size_t axis : {axes.tiles.size(), axes.cores.size(),
                      axes.sizes.size(), axes.widths.size(),
                      axes.wavelengths.size(), axes.in_bits.size(),
                      axes.out_bits.size()}) {
    // The whole point of size() is gauging spaces too big to
    // materialize; a silently wrapped product would report them tiny.
    if (__builtin_mul_overflow(total, axis, &total)) {
      throw std::overflow_error("DseSpace::size() overflows size_t");
    }
  }
  return total;
}

std::vector<arch::ArchParams> GridSampler::sample(
    const DseSpace& space) const {
  return space.enumerate();
}

std::vector<arch::ArchParams> RandomSampler::sample(
    const DseSpace& space) const {
  const ResolvedAxes axes = resolve_axes(space);
  util::Rng rng(seed_);
  auto pick = [&rng](const std::vector<int>& axis) {
    return axis[static_cast<size_t>(
        rng.uniform_int(0, static_cast<int64_t>(axis.size()) - 1))];
  };
  auto draw = [&] {
    // Sequential named draws: one rng call per axis in canonical order,
    // so the stream (and thus the sample list) is stable for a seed.
    const int tiles = pick(axes.tiles);
    const int cores = pick(axes.cores);
    const int hw = pick(axes.sizes);
    const int width = pick(axes.widths);
    const int lambda = pick(axes.wavelengths);
    const int bits = pick(axes.in_bits);
    const int out_bits = pick(axes.out_bits);
    return make_point(space, tiles, cores, hw, width, lambda, bits, out_bits);
  };
  // Redraw on duplicate so `--samples N` means N *distinct* design points
  // whenever the space affords them (the eval cache silently collapsed
  // repeats before).  The retry budget is bounded: on spaces with fewer
  // than N reachable points the sampler falls back to keeping duplicates
  // rather than looping forever, and says so once on stderr.  Redraws
  // consume the rng stream deterministically, so a fixed seed still
  // reproduces the exact sample list.
  constexpr int kMaxRedraws = 64;
  std::unordered_set<arch::ArchParams, ArchParamsHash> seen;
  seen.reserve(samples_);
  std::vector<arch::ArchParams> points;
  points.reserve(samples_);
  size_t duplicates = 0;
  for (size_t i = 0; i < samples_; ++i) {
    arch::ArchParams point = draw();
    for (int retry = 0; retry < kMaxRedraws && seen.count(point) != 0;
         ++retry) {
      point = draw();
    }
    if (!seen.insert(point).second) ++duplicates;
    points.push_back(std::move(point));
  }
  if (duplicates > 0) {
    std::fprintf(stderr,
                 "warning: random sampler kept %zu duplicate point(s) after "
                 "%d redraws each; the space offers fewer than %zu "
                 "easy-to-reach distinct points\n",
                 duplicates, kMaxRedraws, samples_);
  }
  return points;
}

std::vector<arch::ArchParams> LatinHypercubeSampler::sample(
    const DseSpace& space) const {
  const ResolvedAxes axes = resolve_axes(space);
  util::Rng rng(seed_);
  const size_t n = samples_;
  // One stratified-then-permuted column per axis: sample j lands in
  // stratum j of [0, 1), maps to a value index, and a seeded Fisher-Yates
  // shuffle decorrelates the axes.  Marginal coverage of every axis is
  // near-uniform even when n is far below the grid size.
  auto column = [&rng, n](const std::vector<int>& axis) {
    std::vector<int> values(n);
    const double k = static_cast<double>(axis.size());
    for (size_t j = 0; j < n; ++j) {
      const double pos =
          (static_cast<double>(j) + rng.uniform(0.0, 1.0)) /
          static_cast<double>(n);
      const size_t idx = std::min(axis.size() - 1,
                                  static_cast<size_t>(pos * k));
      values[j] = axis[idx];
    }
    for (size_t j = n; j > 1; --j) {  // hand-rolled: std::shuffle's
      const size_t other = static_cast<size_t>(  // draws are unspecified
          rng.uniform_int(0, static_cast<int64_t>(j) - 1));
      std::swap(values[j - 1], values[other]);
    }
    return values;
  };
  const std::vector<int> tiles = column(axes.tiles);
  const std::vector<int> cores = column(axes.cores);
  const std::vector<int> sizes = column(axes.sizes);
  const std::vector<int> widths = column(axes.widths);
  const std::vector<int> wavelengths = column(axes.wavelengths);
  const std::vector<int> in_bits = column(axes.in_bits);
  const std::vector<int> out_bits = column(axes.out_bits);

  std::vector<arch::ArchParams> points;
  points.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    points.push_back(make_point(space, tiles[j], cores[j], sizes[j],
                                widths[j], wavelengths[j], in_bits[j],
                                out_bits[j]));
  }
  return points;
}

std::vector<DsePoint> DseResult::frontier() const {
  std::vector<DsePoint> out;
  for (const auto& p : points) {
    if (p.pareto) out.push_back(p);
  }
  return out;
}

const DsePoint& DseResult::best_edap() const {
  if (points.empty()) throw std::runtime_error("empty DSE result");
  const DsePoint* best = &points.front();
  for (const auto& p : points) {
    if (p.edap() < best->edap()) best = &p;
  }
  return *best;
}

double DsePoint::metric(Metric m) const {
  switch (m) {
    case Metric::kEnergy:
      return energy_pJ;
    case Metric::kLatency:
      return latency_ns;
    case Metric::kArea:
      return area_mm2;
    case Metric::kPower:
      return power_W;
    case Metric::kEdp:
      return energy_pJ * latency_ns;
    case Metric::kEdap:
      return edap();
    case Metric::kP99Latency:
      return p99_latency_ns;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

MetricVector DsePoint::metrics() const {
  MetricVector v =
      MetricVector::of(energy_pJ, latency_ns, area_mm2, power_W);
  v.set(Metric::kP99Latency, p99_latency_ns);
  return v;
}

void mark_pareto_frontier(std::vector<DsePoint>& points) {
  // Non-finite metrics are never on the frontier and do not enter the
  // sort below: NaN (e.g. parsed back from a shard file's null) breaks
  // the comparator's strict weak ordering (undefined behavior in
  // std::sort), and inf must get the same verdict as NaN because
  // serialization collapses both to null — otherwise a merged shard
  // file could disagree with the unsharded in-memory run.
  std::vector<size_t> order;
  order.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    DsePoint& p = points[i];
    if (!std::isfinite(p.energy_pJ) || !std::isfinite(p.latency_ns) ||
        !std::isfinite(p.area_mm2)) {
      p.pareto = false;
    } else {
      order.push_back(i);
    }
  }
  const size_t n = order.size();
  if (n == 0) return;

  // Sort indices lexicographically by (energy, latency, area) ascending.
  // Every point processed before p then has energy <= p's, so p is
  // dominated iff an earlier point with a *different* objective triple has
  // latency <= p's and area <= p's (lexicographic order makes at least one
  // inequality strict).
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const DsePoint& pa = points[a];
    const DsePoint& pb = points[b];
    if (pa.energy_pJ != pb.energy_pJ) return pa.energy_pJ < pb.energy_pJ;
    if (pa.latency_ns != pb.latency_ns) return pa.latency_ns < pb.latency_ns;
    return pa.area_mm2 < pb.area_mm2;
  });

  // Staircase of processed non-dominated points: latency -> area, strictly
  // increasing latency mapped to strictly decreasing area, so the entry
  // with the largest latency <= L holds the minimum area over all
  // processed points with latency <= L.
  std::map<double, double> staircase;
  size_t i = 0;
  while (i < n) {
    const DsePoint& p = points[order[i]];
    // Points with identical objective triples never dominate each other:
    // process them as one group so each copy gets the same verdict.
    size_t j = i;
    while (j < n) {
      const DsePoint& q = points[order[j]];
      if (q.energy_pJ != p.energy_pJ || q.latency_ns != p.latency_ns ||
          q.area_mm2 != p.area_mm2) {
        break;
      }
      ++j;
    }

    bool dominated = false;
    auto it = staircase.upper_bound(p.latency_ns);
    if (it != staircase.begin() &&
        std::prev(it)->second <= p.area_mm2) {
      dominated = true;
    }
    for (size_t k = i; k < j; ++k) points[order[k]].pareto = !dominated;

    if (!dominated) {
      // Entries this point covers (latency >= and area >=) add nothing for
      // later queries; drop them to keep the staircase monotone.
      auto at = staircase.lower_bound(p.latency_ns);
      while (at != staircase.end() && at->second >= p.area_mm2) {
        at = staircase.erase(at);
      }
      staircase.emplace(p.latency_ns, p.area_mm2);
    }
    i = j;
  }
}

void mark_pareto_frontier(std::vector<DsePoint>& points,
                          const std::vector<Metric>& axes) {
  if (axes.empty()) {
    throw std::invalid_argument("mark_pareto_frontier: empty axis list");
  }
  // The legacy triple takes the O(n log n) staircase above — its verdicts
  // (and therefore every legacy document) stay byte-identical.
  static const std::vector<Metric> kLegacyAxes = {Metric::kEnergy,
                                                  Metric::kLatency,
                                                  Metric::kArea};
  if (axes == kLegacyAxes) {
    mark_pareto_frontier(points);
    return;
  }

  // General axis lists run a quadratic dominance check; sweeps that need
  // them reference extra metrics (power, p99) and are far from the sizes
  // where the staircase's asymptotics matter.  Non-finite on any axis
  // excludes a point outright, matching the legacy rule slot-wise.
  std::vector<size_t> order;
  order.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    DsePoint& p = points[i];
    bool finite = true;
    for (Metric axis : axes) {
      if (!std::isfinite(p.metric(axis))) {
        finite = false;
        break;
      }
    }
    p.pareto = false;
    if (finite) order.push_back(i);
  }

  for (size_t a : order) {
    DsePoint& p = points[a];
    bool dominated = false;
    for (size_t b : order) {
      if (a == b) continue;
      const DsePoint& q = points[b];
      // q dominates p iff q <= p on every axis and q < p on at least one;
      // identical tuples never dominate each other, so every copy of a
      // tuple gets the same verdict.
      bool all_le = true;
      bool any_lt = false;
      for (Metric axis : axes) {
        const double qv = q.metric(axis);
        const double pv = p.metric(axis);
        if (qv > pv) {
          all_le = false;
          break;
        }
        if (qv < pv) any_lt = true;
      }
      if (all_le && any_lt) {
        dominated = true;
        break;
      }
    }
    p.pareto = !dominated;
  }
}

DseResult merge(std::vector<DseResult> shards) {
  return merge(std::move(shards),
               {Metric::kEnergy, Metric::kLatency, Metric::kArea});
}

DseResult merge(std::vector<DseResult> shards,
                const std::vector<Metric>& axes) {
  DseResult merged;
  size_t total = 0;
  for (const auto& shard : shards) total += shard.points.size();
  merged.points.reserve(total);
  for (auto& shard : shards) {
    for (auto& point : shard.points) {
      merged.points.push_back(std::move(point));
    }
  }
  std::stable_sort(
      merged.points.begin(), merged.points.end(),
      [](const DsePoint& a, const DsePoint& b) { return a.index < b.index; });
  for (size_t i = 1; i < merged.points.size(); ++i) {
    if (merged.points[i - 1].index == merged.points[i].index) {
      throw std::invalid_argument(
          "merge: duplicate canonical point index " +
          std::to_string(merged.points[i].index) + " (overlapping shards?)");
    }
  }
  mark_pareto_frontier(merged.points, axes);
  return merged;
}

namespace {

const util::Json& require_field(const util::Json& j, const std::string& key) {
  if (!j.is_object() || !j.contains(key)) {
    throw std::invalid_argument("DSE point JSON missing field '" + key +
                                "'");
  }
  return j.at(key);
}

/// Metric field: the writer emits null for non-finite values, so null
/// parses back as NaN.
double metric_from(const util::Json& j, const std::string& key) {
  const util::Json& v = require_field(j, key);
  if (v.is_null()) return std::numeric_limits<double>::quiet_NaN();
  return v.as_number();
}

int int_from(const util::Json& j, const std::string& key) {
  const double d = require_field(j, key).as_number();
  if (d != std::floor(d) || d < std::numeric_limits<int>::min() ||
      d > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("DSE point JSON field '" + key +
                                "' is not an integer");
  }
  return static_cast<int>(d);
}

}  // namespace

util::Json to_json(const DsePoint& point) {
  util::Json j;
  j["index"] = point.index;
  j["tiles"] = point.params.tiles;
  j["cores_per_tile"] = point.params.cores_per_tile;
  j["core_height"] = point.params.core_height;
  j["core_width"] = point.params.core_width;
  j["wavelengths"] = point.params.wavelengths;
  j["clock_GHz"] = point.params.clock_GHz;
  j["input_bits"] = point.params.input_bits;
  j["weight_bits"] = point.params.weight_bits;
  j["output_bits"] = point.params.output_bits;
  j["energy_pJ"] = point.energy_pJ;
  j["latency_ns"] = point.latency_ns;
  j["area_mm2"] = point.area_mm2;
  j["power_W"] = point.power_W;
  j["tops"] = point.tops;
  // Tail latency rides along only when the sweep's objective asked for it
  // (the evaluator leaves it NaN otherwise), so every legacy document is
  // byte-identical.
  if (std::isfinite(point.p99_latency_ns)) {
    j["p99_latency_ns"] = point.p99_latency_ns;
  }
  j["pareto"] = point.pareto;
  // Strategy provenance: only points a multi-rung strategy produced carry
  // a rung, so one-shot documents stay byte-identical to older files.
  if (point.rung >= 0) j["rung"] = point.rung;
  // Batched points carry their per-model rows; single-model points omit
  // the field entirely, keeping pre-batch documents byte-identical.
  if (!point.per_model.empty()) {
    util::Json models{util::Json::Array{}};
    for (const DseModelMetrics& m : point.per_model) {
      util::Json mj;
      mj["model"] = m.model;
      mj["weight"] = m.weight;
      mj["energy_pJ"] = m.energy_pJ;
      mj["latency_ns"] = m.latency_ns;
      mj["area_mm2"] = m.area_mm2;
      mj["power_W"] = m.power_W;
      mj["tops"] = m.tops;
      models.push_back(std::move(mj));
    }
    j["models"] = std::move(models);
  }
  return j;
}

DsePoint dse_point_from_json(const util::Json& j) {
  DsePoint point;
  if (j.contains("index")) {
    const double index = j.at("index").as_number();
    if (index < 0.0 || index != std::floor(index) || index >= 0x1p53) {
      throw std::invalid_argument(
          "DSE point JSON field 'index' is not a non-negative integer");
    }
    point.index = static_cast<size_t>(index);
  }
  point.params.tiles = int_from(j, "tiles");
  point.params.cores_per_tile = int_from(j, "cores_per_tile");
  point.params.core_height = int_from(j, "core_height");
  point.params.core_width = int_from(j, "core_width");
  point.params.wavelengths = int_from(j, "wavelengths");
  // Pre-sharding files never recorded the clock; keep the ArchParams
  // default so they stay loadable (like the missing-"index" fallback).
  if (j.contains("clock_GHz")) {
    point.params.clock_GHz = j.at("clock_GHz").as_number();
  }
  point.params.input_bits = int_from(j, "input_bits");
  point.params.weight_bits = int_from(j, "weight_bits");
  point.params.output_bits = int_from(j, "output_bits");
  point.energy_pJ = metric_from(j, "energy_pJ");
  point.latency_ns = metric_from(j, "latency_ns");
  point.area_mm2 = metric_from(j, "area_mm2");
  point.power_W = metric_from(j, "power_W");
  point.tops = metric_from(j, "tops");
  if (j.contains("p99_latency_ns")) {
    const util::Json& v = j.at("p99_latency_ns");
    point.p99_latency_ns =
        v.is_null() ? std::numeric_limits<double>::quiet_NaN()
                    : v.as_number();
  }
  point.pareto = j.contains("pareto") && j.at("pareto").as_bool();
  if (j.contains("rung")) point.rung = int_from(j, "rung");
  if (j.contains("models")) {
    const util::Json::Array& models = j.at("models").as_array();
    point.per_model.reserve(models.size());
    for (const util::Json& mj : models) {
      DseModelMetrics m;
      m.model = require_field(mj, "model").as_string();
      m.weight = require_field(mj, "weight").as_number();
      m.energy_pJ = metric_from(mj, "energy_pJ");
      m.latency_ns = metric_from(mj, "latency_ns");
      m.area_mm2 = metric_from(mj, "area_mm2");
      m.power_W = metric_from(mj, "power_W");
      m.tops = metric_from(mj, "tops");
      point.per_model.push_back(std::move(m));
    }
  }
  return point;
}

// ---------------------------------------------------------- DseShardWriter

namespace {

/// Back-compat sink over a caller-owned std::ostream (stringstreams in
/// tests, pre-durability file streams).  No commit step.
class OstreamSink final : public ShardSink {
 public:
  explicit OstreamSink(std::ostream& out) : out_(&out) {}
  void write(const std::string& text) override { *out_ << text; }
  uint64_t tell() override {
    return static_cast<uint64_t>(out_->tellp());
  }
  void seek(uint64_t pos) override {
    out_->seekp(static_cast<std::ostream::pos_type>(pos));
  }
  void flush() override { out_->flush(); }

 private:
  std::ostream* out_;
};

/// Durable file sink: all bytes land in `path + ".tmp"`; every flush()
/// is an fflush + fsync (the in-progress file survives a hard kill up to
/// the last completed point); commit() renames the temp file onto
/// `path`, so the final document appears atomically.  Reuses
/// util::AtomicFileOutputStream's open/rename plumbing indirectly via
/// plain stdio here because the shard writer needs seek support, which
/// the append-only binio stream deliberately does not offer.
class AtomicFileSink final : public ShardSink {
 public:
  explicit AtomicFileSink(std::string path)
      : path_(std::move(path)), temp_path_(path_ + ".tmp") {
    file_ = std::fopen(temp_path_.c_str(), "wb");
    if (file_ == nullptr) {
      throw util::IoError("cannot open '" + temp_path_ +
                          "' for writing: " + std::strerror(errno));
    }
  }

  ~AtomicFileSink() override {
    // Uncommitted: keep the temp file — it is the --resume artifact.
    if (file_ != nullptr) std::fclose(file_);
  }

  void write(const std::string& text) override {
    require_open("write");
    if (std::fwrite(text.data(), 1, text.size(), file_) != text.size()) {
      throw util::IoError("write failed on '" + temp_path_ + "' at byte " +
                          std::to_string(tell_raw()) + ": " +
                          std::strerror(errno));
    }
  }

  uint64_t tell() override {
    require_open("tell");
    return tell_raw();
  }

  void seek(uint64_t pos) override {
    require_open("seek");
    if (std::fseek(file_, static_cast<long>(pos), SEEK_SET) != 0) {
      throw util::IoError("seek failed on '" + temp_path_ + "' to byte " +
                          std::to_string(pos) + ": " + std::strerror(errno));
    }
  }

  void flush() override {
    require_open("flush");
    if (std::fflush(file_) != 0) {
      throw util::IoError("flush failed on '" + temp_path_ +
                          "': " + std::strerror(errno));
    }
#ifndef _WIN32
    if (::fsync(fileno(file_)) != 0) {
      throw util::IoError("fsync failed on '" + temp_path_ +
                          "': " + std::strerror(errno));
    }
#endif
  }

  void commit() override {
    require_open("commit");
    flush();
    std::FILE* file = std::exchange(file_, nullptr);
    if (std::fclose(file) != 0) {
      throw util::IoError("close failed on '" + temp_path_ +
                          "': " + std::strerror(errno));
    }
    if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
      throw util::IoError("rename '" + temp_path_ + "' -> '" + path_ +
                          "' failed: " + std::strerror(errno));
    }
  }

 private:
  uint64_t tell_raw() {
    const long pos = std::ftell(file_);
    if (pos < 0) {
      throw util::IoError("tell failed on '" + temp_path_ +
                          "': " + std::strerror(errno));
    }
    return static_cast<uint64_t>(pos);
  }

  void require_open(const char* op) {
    if (file_ == nullptr) {
      throw util::IoError(std::string(op) + " on '" + path_ +
                          "' after commit");
    }
  }

  std::string path_;
  std::string temp_path_;
  std::FILE* file_ = nullptr;
};

}  // namespace

DseShardWriter::DseShardWriter(std::unique_ptr<ShardSink> sink,
                               Metadata metadata)
    : sink_(std::move(sink)) {
  std::string header;
  header += "{\n\"arch\": " + util::Json(metadata.arch).dump(-1);
  header += ",\n\"model\": " + util::Json(metadata.model).dump(-1);
  header += ",\n\"sampler\": " + util::Json(metadata.sampler).dump(-1);
  if (metadata.report_distinct) {
    header += ",\n\"distinct\": " + std::to_string(metadata.distinct);
  }
  if (!metadata.aggregate.empty()) {
    header += ",\n\"aggregate\": " + util::Json(metadata.aggregate).dump(-1);
  }
  // Non-canned objective specs change point semantics (extra Pareto axes,
  // p99 fields), so --resume / --merge must refuse mismatched shards; the
  // canned specs stamp nothing, keeping legacy documents byte-identical.
  if (!metadata.objective.empty()) {
    header += ",\n\"objective\": " + util::Json(metadata.objective).dump(-1);
  }
  // Strategy runs record how the sweep was driven so --resume / --merge
  // can refuse mismatched shards; one-shot sweeps omit the object
  // entirely, keeping their documents byte-identical to older files.
  if (!metadata.strategy.empty()) {
    header += ",\n\"strategy\": {\"name\": " +
              util::Json(metadata.strategy).dump(-1);
    if (metadata.eta > 0) header += ", \"eta\": " + std::to_string(metadata.eta);
    if (metadata.rungs > 0) {
      header += ", \"rungs\": " + std::to_string(metadata.rungs);
    }
    header += "}";
  }
  header += ",\n\"shard\": {\"count\": " + std::to_string(metadata.shard.count) +
            ", \"index\": " + std::to_string(metadata.shard.index) + "}";
  header += ",\n\"total_points\": " + std::to_string(metadata.total_points);
  header += ",\n\"points\": [";
  sink_->write(header);
  // Terminate the document immediately: a sweep killed while its first
  // (possibly expensive) point is still simulating must already leave a
  // parseable zero-point shard on disk.
  const uint64_t header_end = sink_->tell();
  sink_->write("\n]\n}\n");
  sink_->flush();
  sink_->seek(header_end);
}

DseShardWriter::DseShardWriter(std::ostream& out, Metadata metadata)
    : DseShardWriter(std::make_unique<OstreamSink>(out),
                     std::move(metadata)) {}

DseShardWriter::DseShardWriter(const std::string& path, Metadata metadata)
    : DseShardWriter(std::make_unique<AtomicFileSink>(path),
                     std::move(metadata)) {}

void DseShardWriter::add_point(const DsePoint& point) {
  if (finished_) {
    throw std::logic_error("DseShardWriter: add_point after finish");
  }
  std::string text;
  if (any_points_) text += ",";
  any_points_ = true;
  text += "\n" + to_json(point).dump(-1);
  sink_->write(text);
  // Re-terminate the document, flush it, then seek the put pointer back
  // over the footer: the bytes on disk always form a complete document,
  // and the next point simply overwrites the footer.
  const uint64_t point_end = sink_->tell();
  sink_->write("\n]\n}\n");
  sink_->flush();
  sink_->seek(point_end);
}

void DseShardWriter::finish() {
  if (finished_) return;
  finished_ = true;
  // The footer is already in the stream past the put pointer — the
  // constructor wrote it for the zero-point state and every add_point
  // rewrote it; flush the last bytes, then let the sink finalize (atomic
  // rename for the file-backed writer).
  sink_->flush();
  sink_->commit();
}

DseShardWriter::~DseShardWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an uncommitted file sink keeps its
    // temp file on disk as the recovery artifact.
  }
}

// --------------------------------------------------------- shard recovery

namespace {

[[noreturn]] void recovery_fail(const std::string& origin,
                                const std::string& what) {
  throw std::invalid_argument(
      (origin.empty() ? std::string() : origin + ": ") + what);
}

DseShardWriter::Metadata metadata_from_header(const util::Json& root) {
  DseShardWriter::Metadata meta;
  meta.arch = root.at("arch").as_string();
  meta.model = root.at("model").as_string();
  meta.sampler = root.at("sampler").as_string();
  if (root.contains("distinct")) {
    meta.distinct = static_cast<size_t>(root.at("distinct").as_number());
    meta.report_distinct = true;
  }
  if (root.contains("aggregate")) {
    meta.aggregate = root.at("aggregate").as_string();
  }
  if (root.contains("objective")) {
    meta.objective = root.at("objective").as_string();
  }
  if (root.contains("strategy")) {
    const util::Json& strategy = root.at("strategy");
    meta.strategy = strategy.at("name").as_string();
    if (strategy.contains("eta")) {
      meta.eta = static_cast<int>(strategy.at("eta").as_number());
    }
    if (strategy.contains("rungs")) {
      meta.rungs = static_cast<int>(strategy.at("rungs").as_number());
    }
  }
  const util::Json& shard = root.at("shard");
  meta.shard.count = static_cast<int>(shard.at("count").as_number());
  meta.shard.index = static_cast<int>(shard.at("index").as_number());
  meta.total_points = static_cast<size_t>(root.at("total_points").as_number());
  return meta;
}

}  // namespace

ShardRecovery recover_shard_text(const std::string& text,
                                 const std::string& origin) {
  ShardRecovery recovery;

  // Fast path: an untorn document (every between-points kill state the
  // writer can leave behind, and every finished file) parses whole.
  try {
    const util::Json root = util::Json::parse(text);
    recovery.metadata = metadata_from_header(root);
    recovery.result = dse_result_from_json(root);
    recovery.complete = true;
    return recovery;
  } catch (const std::invalid_argument&) {
    // Torn inside a write: fall through to line-based salvage.
  }

  // The writer emits "points": [ then one point per line, so the header
  // is everything before the marker and each body line is one point.
  static const std::string kMarker = "\"points\": [";
  const size_t marker = text.find(kMarker);
  if (marker == std::string::npos) {
    recovery_fail(origin,
                  "shard document unrecoverable: torn before the "
                  "\"points\" array (no metadata salvageable)");
  }
  const size_t body_start = marker + kMarker.size();
  try {
    const util::Json header =
        util::Json::parse(text.substr(0, body_start) + "]}");
    recovery.metadata = metadata_from_header(header);
  } catch (const std::invalid_argument& error) {
    recovery_fail(origin, std::string("shard header unrecoverable: ") +
                              error.what());
  }

  // Greedy per-line point parse; the first torn line ends the salvage.
  size_t cursor = body_start;
  size_t valid_end = body_start;
  while (cursor < text.size()) {
    size_t line_end = text.find('\n', cursor);
    if (line_end == std::string::npos) line_end = text.size();
    std::string line = text.substr(cursor, line_end - cursor);
    if (!line.empty() && line.back() == ',') line.pop_back();
    if (!line.empty() && line != "]" && line != "}") {
      try {
        recovery.result.points.push_back(
            dse_point_from_json(util::Json::parse(line)));
        valid_end = line_end;
      } catch (const std::invalid_argument&) {
        break;  // torn (or foreign) line: keep the prefix before it
      }
    }
    cursor = line_end + 1;
  }
  recovery.truncated_at = valid_end;
  recovery.message =
      (origin.empty() ? std::string("shard document") : origin) +
      " torn at byte " + std::to_string(valid_end) + "; recovered " +
      std::to_string(recovery.result.points.size()) + " point(s)";
  return recovery;
}

util::Json to_json(const DseResult& result) {
  util::Json points{util::Json::Array{}};
  for (const auto& point : result.points) points.push_back(to_json(point));
  util::Json j;
  j["points"] = std::move(points);
  return j;
}

DseResult dse_result_from_json(const util::Json& j) {
  const util::Json::Array& array =
      j.is_array() ? j.as_array() : require_field(j, "points").as_array();
  DseResult result;
  result.points.reserve(array.size());
  for (size_t i = 0; i < array.size(); ++i) {
    DsePoint point = dse_point_from_json(array[i]);
    // Pre-sharding files carry no index: the array position is canonical.
    if (!array[i].contains("index")) point.index = i;
    result.points.push_back(std::move(point));
  }
  return result;
}

namespace {

/// The strategy-driven engine loop (DseOptions::strategy != nullptr):
/// hands the strategy this shard's slice of the canonical point list,
/// then alternates next_batch() / consume() — deduplicating identical
/// (params, fidelity) evaluations across batches, evaluating fresh
/// candidates on the pool — until the strategy is done, and restores
/// canonical index order over finish().
DseResult run_strategy_engine(
    const std::vector<arch::ArchParams>& all_points,
    const DseOptions& options,
    const std::function<void(const DsePoint&)>& progress,
    const std::function<DsePoint(const arch::ArchParams&, FidelityLevel)>&
        evaluate) {
  ExploreStrategy& strategy = *options.strategy;
  ExploreStrategy::Context context;
  context.total_points = all_points.size();
  context.skip_indices = options.skip_indices;
  context.slice.reserve(
      all_points.size() / static_cast<size_t>(options.shard.count) + 1);
  size_t skipped = 0;
  for (size_t g = static_cast<size_t>(options.shard.index);
       g < all_points.size(); g += static_cast<size_t>(options.shard.count)) {
    // Skipped (resumed) indices stay in the slice — a strategy may need
    // them for rank consistency — but count as completed up front, and
    // the strategy never re-proposes them at full fidelity.
    if (options.skip_indices != nullptr &&
        options.skip_indices->count(g) != 0) {
      ++skipped;
    }
    context.slice.push_back(ExploreStrategy::Candidate{
        g, all_points[g], FidelityLevel::kFull});
  }
  strategy.begin(std::move(context));

  const size_t progress_every =
      static_cast<size_t>(std::max(1, options.progress_every));
  std::mutex progress_mutex;
  size_t completed = skipped;
  size_t scheduled = skipped;
  // Milestones work as in the one-shot path, except the denominator is
  // the evaluations scheduled so far (a strategy's total work is not
  // known up front), so every batch boundary lands a callback.  The
  // positional `progress` hook is the result stream (--out shard files):
  // only full-fidelity completions reach it — low-fidelity probes are
  // engine-internal and never part of the result.
  auto report_progress = [&](const DsePoint& point, FidelityLevel fidelity) {
    if (!progress && !options.on_progress &&
        !options.CommonOptions::on_progress) {
      return;
    }
    std::lock_guard<std::mutex> lock(progress_mutex);
    ++completed;
    if (completed % progress_every != 0 && completed != scheduled) return;
    if (progress && fidelity == FidelityLevel::kFull) progress(point);
    if (options.on_progress) {
      options.on_progress(DseProgress{{completed, scheduled}, &point});
    }
    if (options.CommonOptions::on_progress) {
      options.CommonOptions::on_progress(Progress{completed, scheduled});
    }
  };

  // Cross-batch memo: one evaluation per distinct (params, fidelity),
  // so e.g. halving's full-fidelity rung reuses nothing from its
  // low-fidelity rungs but repeated parameter points cost once.
  struct FidelityParamsKey {
    arch::ArchParams params;
    FidelityLevel fidelity;
    bool operator==(const FidelityParamsKey& other) const {
      return fidelity == other.fidelity && params == other.params;
    }
  };
  struct FidelityParamsKeyHash {
    size_t operator()(const FidelityParamsKey& key) const {
      size_t seed = ArchParamsHash{}(key.params);
      util::hash_combine_value(seed, static_cast<int>(key.fidelity));
      return seed;
    }
  };
  std::unordered_map<FidelityParamsKey, size_t, FidelityParamsKeyHash> memo;
  std::vector<DsePoint> store;

  while (true) {
    const std::vector<ExploreStrategy::Candidate> batch =
        strategy.next_batch();
    if (batch.empty()) break;

    std::vector<size_t> slot_of(batch.size());
    std::vector<size_t> fresh_slot;       // store slots to fill this batch
    std::vector<size_t> fresh_candidate;  // batch positions owning them
    for (size_t b = 0; b < batch.size(); ++b) {
      if (options.cache) {
        const auto [it, inserted] = memo.try_emplace(
            FidelityParamsKey{batch[b].params, batch[b].fidelity},
            store.size());
        slot_of[b] = it->second;
        if (!inserted) continue;  // memo hit: reported at assembly below
      } else {
        slot_of[b] = store.size();
      }
      fresh_slot.push_back(store.size());
      fresh_candidate.push_back(b);
      store.emplace_back();
    }
    {
      std::lock_guard<std::mutex> lock(progress_mutex);
      scheduled += batch.size();
    }

    const unsigned pool_threads = util::ThreadPool::workers_for(
        options.num_threads, fresh_candidate.size());
    {
      util::ThreadPool pool(pool_threads);
      pool.parallel_for(fresh_candidate.size(), [&](size_t u) {
        const ExploreStrategy::Candidate& c = batch[fresh_candidate[u]];
        DsePoint& out = store[fresh_slot[u]];
        out = evaluate(c.params, c.fidelity);
        out.index = c.index;
        report_progress(out, c.fidelity);
      });
    }

    std::vector<DsePoint> results;
    results.reserve(batch.size());
    size_t next_fresh = 0;
    for (size_t b = 0; b < batch.size(); ++b) {
      results.push_back(store[slot_of[b]]);
      results.back().index = batch[b].index;
      if (next_fresh < fresh_candidate.size() &&
          fresh_candidate[next_fresh] == b) {
        ++next_fresh;  // evaluated (and reported) on a worker above
      } else {
        report_progress(results.back(), batch[b].fidelity);
      }
    }
    strategy.consume(results, fresh_candidate.size());
  }

  DseResult result;
  result.points = strategy.finish();
  std::stable_sort(
      result.points.begin(), result.points.end(),
      [](const DsePoint& a, const DsePoint& b) { return a.index < b.index; });
  mark_pareto_frontier(result.points, pareto_axes(options.objective));
  return result;
}

/// The exploration engine shared by the single-model and batched
/// overloads: canonical point list, shard slicing, duplicate-point
/// dedup, pooled evaluation with indexed writes, progress accounting,
/// assembly in canonical order, frontier marking.  `evaluate` costs one
/// parameter point at a requested fidelity (it must be thread-safe; the
/// engine shares it across workers).  With DseOptions::strategy set the
/// strategy loop above drives the evaluations instead.
DseResult run_engine(
    const DseSpace& space, const DseOptions& options,
    const std::function<void(const DsePoint&)>& progress,
    const std::function<DsePoint(const arch::ArchParams&, FidelityLevel)>&
        evaluate) {
  if (options.shard.count < 1 || options.shard.index < 0 ||
      options.shard.index >= options.shard.count) {
    throw std::invalid_argument(
        "invalid DSE shard " + std::to_string(options.shard.index) + "/" +
        std::to_string(options.shard.count) +
        " (need count >= 1 and 0 <= index < count)");
  }
  const std::vector<arch::ArchParams> all_points =
      options.sampler != nullptr ? options.sampler->sample(space)
                                 : space.enumerate();
  if (options.strategy != nullptr) {
    return run_strategy_engine(all_points, options, progress, evaluate);
  }
  // This process's slice: canonical indices congruent to the shard index
  // modulo the shard count (round-robin, so shards stay load-balanced
  // even when cost grows along the grid).
  std::vector<arch::ArchParams> grid;
  std::vector<size_t> canonical;
  grid.reserve(all_points.size() / static_cast<size_t>(options.shard.count) +
               1);
  size_t skipped = 0;
  for (size_t g = static_cast<size_t>(options.shard.index);
       g < all_points.size(); g += static_cast<size_t>(options.shard.count)) {
    // Resume: indices already recovered from an interrupted run are not
    // re-evaluated; the caller merges the recovered points back in.
    if (options.skip_indices != nullptr &&
        options.skip_indices->count(g) != 0) {
      ++skipped;
      continue;
    }
    grid.push_back(all_points[g]);
    canonical.push_back(g);
  }

  // Collapse duplicate parameter points: eval_of[g] is the slot in
  // `evaluated` holding grid point g's result; only the first occurrence
  // of each distinct ArchParams is actually simulated.
  std::vector<size_t> eval_of(grid.size());
  std::vector<size_t> unique_grid_index;
  if (options.cache) {
    std::unordered_map<arch::ArchParams, size_t, ArchParamsHash> slot_of_params;
    slot_of_params.reserve(grid.size());
    for (size_t g = 0; g < grid.size(); ++g) {
      const auto [it, inserted] =
          slot_of_params.try_emplace(grid[g], unique_grid_index.size());
      if (inserted) unique_grid_index.push_back(g);
      eval_of[g] = it->second;
    }
  } else {
    unique_grid_index.resize(grid.size());
    std::iota(unique_grid_index.begin(), unique_grid_index.end(), size_t{0});
    std::iota(eval_of.begin(), eval_of.end(), size_t{0});
  }

  // More workers than unique points would just be idle threads (or a
  // resource-exhaustion failure for absurd requests): workers_for clamps,
  // resolves 0 to the hardware thread count, maps 1 (and a clamp to 1) to
  // inline execution, and rejects negative requests.
  const unsigned pool_threads = util::ThreadPool::workers_for(
      options.num_threads, unique_grid_index.size());
  const size_t progress_every =
      static_cast<size_t>(std::max(1, options.progress_every));

  // Skipped (resumed) indices count as completed up front: their results
  // already exist, so progress keeps the monotone completed/n_total
  // invariant and the final callback lands at n_total instead of a
  // stuck-looking fraction of it.
  const size_t n_total = grid.size() + skipped;
  std::mutex progress_mutex;
  size_t completed = skipped;
  auto report_progress = [&](const DsePoint& point) {
    if (!progress && !options.on_progress &&
        !options.CommonOptions::on_progress) {
      return;
    }
    std::lock_guard<std::mutex> lock(progress_mutex);
    ++completed;
    // Milestones: every Nth completion plus — exactly once, since the
    // mutex makes `completed` monotone — the final point of the shard.
    if (completed % progress_every != 0 && completed != n_total) return;
    if (progress) progress(point);
    if (options.on_progress) {
      options.on_progress(DseProgress{{completed, n_total}, &point});
    }
    if (options.CommonOptions::on_progress) {
      options.CommonOptions::on_progress(Progress{completed, n_total});
    }
  };

  // Evaluate the unique points with one chunked parallel_for (the caller
  // participates; workers steal chunks of points as their own run dry).
  // Results are written to indexed slots, so the assembled order below is
  // the grid order no matter which participant finishes first; a given
  // point runs the same instruction sequence on any thread, so results
  // are bit-identical across thread counts.  One failed point fails the
  // whole sweep: no new chunks are claimed after a throw (a throwing
  // progress callback also aborts) and the lowest failing point's
  // exception reaches the caller.
  std::vector<DsePoint> evaluated(unique_grid_index.size());
  {
    util::ThreadPool pool(pool_threads);
    pool.parallel_for(unique_grid_index.size(), [&](size_t u) {
      evaluated[u] = evaluate(grid[unique_grid_index[u]], FidelityLevel::kFull);
      evaluated[u].index = canonical[unique_grid_index[u]];
      report_progress(evaluated[u]);
    });
  }

  DseResult result;
  result.points.reserve(grid.size());
  for (size_t g = 0; g < grid.size(); ++g) {
    result.points.push_back(evaluated[eval_of[g]]);
    result.points.back().index = canonical[g];
    // Cache hits complete here, not on a worker; count them for progress
    // so callers see every grid point exactly once and the final callback
    // lands at completed == n_total.
    if (options.cache && unique_grid_index[eval_of[g]] != g) {
      report_progress(result.points.back());
    }
  }

  mark_pareto_frontier(result.points, pareto_axes(options.objective));
  return result;
}

std::vector<std::shared_ptr<const arch::PtcTemplate>> share_templates(
    const std::vector<arch::PtcTemplate>& ptc_templates) {
  if (ptc_templates.empty()) {
    throw std::invalid_argument("explore needs at least one PTC template");
  }
  std::vector<std::shared_ptr<const arch::PtcTemplate>> shared_templates;
  shared_templates.reserve(ptc_templates.size());
  for (const auto& ptc_template : ptc_templates) {
    shared_templates.push_back(
        std::make_shared<const arch::PtcTemplate>(ptc_template));
  }
  return shared_templates;
}

}  // namespace

DseResult explore(const std::vector<arch::PtcTemplate>& ptc_templates,
                  const devlib::DeviceLibrary& lib,
                  const workload::Model& model, const DseSpace& space,
                  const DseOptions& options,
                  const std::function<void(const DsePoint&)>& progress) {
  // Hoisted per-point invariants: shared templates, one GEMM extraction.
  const std::vector<std::shared_ptr<const arch::PtcTemplate>>
      shared_templates = share_templates(ptc_templates);
  const std::vector<workload::GemmWorkload> base_gemms =
      workload::extract_gemms(model);
  const bool override_input_bits = !space.input_bits.empty();
  const bool override_output_bits = !space.output_bits.empty();
  // With no swept bit axis every point costs the identical GEMMs, so the
  // workload-side cache fingerprints (which content-hash the weight
  // tensors) are computed once for the whole sweep instead of per point.
  std::vector<uint64_t> base_keys;
  if (options.cost_cache != nullptr && !override_input_bits &&
      !override_output_bits) {
    base_keys.reserve(base_gemms.size());
    for (const auto& gemm : base_gemms) {
      base_keys.push_back(gemm_fingerprint(gemm));
    }
  }
  const bool want_p99 = options.objective.references(Metric::kP99Latency);
  return run_engine(
      space, options, progress,
      [&](const arch::ArchParams& params, FidelityLevel fidelity) {
        // kLow substitutes the cheap mapper; with none configured the
        // full mapper runs (correct, just saves nothing).
        const Mapper* mapper =
            fidelity == FidelityLevel::kLow &&
                    options.low_fidelity_mapper != nullptr
                ? options.low_fidelity_mapper
                : options.mapper;
        return evaluate_point(shared_templates, lib, base_gemms, params,
                              override_input_bits, override_output_bits,
                              mapper, options.cost_cache,
                              base_keys.empty() ? nullptr : base_keys.data(),
                              want_p99);
      });
}

DseResult explore(const std::vector<arch::PtcTemplate>& ptc_templates,
                  const devlib::DeviceLibrary& lib,
                  const WorkloadSet& workloads, const DseSpace& space,
                  const DseOptions& options,
                  const std::function<void(const DsePoint&)>& progress) {
  const std::vector<std::shared_ptr<const arch::PtcTemplate>>
      shared_templates = share_templates(ptc_templates);
  if (workloads.empty()) {
    throw std::invalid_argument("explore needs a non-empty WorkloadSet");
  }
  const bool override_input_bits = !space.input_bits.empty();
  const bool override_output_bits = !space.output_bits.empty();
  const bool want_p99 = options.objective.references(Metric::kP99Latency);
  return run_engine(
      space, options, progress,
      [&](const arch::ArchParams& params, FidelityLevel fidelity) {
        const Mapper* mapper =
            fidelity == FidelityLevel::kLow &&
                    options.low_fidelity_mapper != nullptr
                ? options.low_fidelity_mapper
                : options.mapper;
        return evaluate_batch_point(shared_templates, lib, workloads, params,
                                    override_input_bits, override_output_bits,
                                    mapper, options.cost_cache,
                                    options.aggregate, want_p99);
      });
}

DseResult explore(const arch::PtcTemplate& ptc_template,
                  const devlib::DeviceLibrary& lib,
                  const workload::Model& model, const DseSpace& space,
                  const DseOptions& options,
                  const std::function<void(const DsePoint&)>& progress) {
  return explore(std::vector<arch::PtcTemplate>{ptc_template}, lib, model,
                 space, options, progress);
}

DseResult explore(const arch::PtcTemplate& ptc_template,
                  const devlib::DeviceLibrary& lib,
                  const WorkloadSet& workloads, const DseSpace& space,
                  const DseOptions& options,
                  const std::function<void(const DsePoint&)>& progress) {
  return explore(std::vector<arch::PtcTemplate>{ptc_template}, lib,
                 workloads, space, options, progress);
}

DseResult explore(const arch::PtcTemplate& ptc_template,
                  const devlib::DeviceLibrary& lib,
                  const workload::Model& model, const DseSpace& space,
                  const std::function<void(const DsePoint&)>& progress) {
  return explore(ptc_template, lib, model, space, DseOptions{}, progress);
}

}  // namespace simphony::core
