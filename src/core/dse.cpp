#include "core/dse.h"

#include <stdexcept>

namespace simphony::core {

namespace {

bool dominates(const DsePoint& a, const DsePoint& b) {
  return a.energy_pJ <= b.energy_pJ && a.latency_ns <= b.latency_ns &&
         a.area_mm2 <= b.area_mm2 &&
         (a.energy_pJ < b.energy_pJ || a.latency_ns < b.latency_ns ||
          a.area_mm2 < b.area_mm2);
}

std::vector<int> axis_or(const std::vector<int>& axis, int fallback) {
  return axis.empty() ? std::vector<int>{fallback} : axis;
}

}  // namespace

std::vector<DsePoint> DseResult::frontier() const {
  std::vector<DsePoint> out;
  for (const auto& p : points) {
    if (p.pareto) out.push_back(p);
  }
  return out;
}

const DsePoint& DseResult::best_edap() const {
  if (points.empty()) throw std::runtime_error("empty DSE result");
  const DsePoint* best = &points.front();
  for (const auto& p : points) {
    if (p.edap() < best->edap()) best = &p;
  }
  return *best;
}

DseResult explore(const arch::PtcTemplate& ptc_template,
                  const devlib::DeviceLibrary& lib,
                  const workload::Model& model, const DseSpace& space,
                  const std::function<void(const DsePoint&)>& progress) {
  DseResult result;
  for (int tiles : axis_or(space.tiles, space.base.tiles)) {
    for (int cores : axis_or(space.cores_per_tile,
                             space.base.cores_per_tile)) {
      for (int hw : axis_or(space.core_sizes, space.base.core_height)) {
        for (int lambda : axis_or(space.wavelengths,
                                  space.base.wavelengths)) {
          for (int bits : axis_or(space.input_bits, space.base.input_bits)) {
            arch::ArchParams p = space.base;
            p.tiles = tiles;
            p.cores_per_tile = cores;
            p.core_height = hw;
            p.core_width = hw;
            p.wavelengths = lambda;
            p.input_bits = bits;
            p.weight_bits = bits;

            arch::Architecture system("dse-" + ptc_template.name);
            system.add_subarch(
                arch::SubArchitecture(ptc_template, p, lib));
            Simulator sim(std::move(system));
            workload::Model work = model;
            for (auto& layer : work.layers) {
              layer.input_bits = bits;
              layer.weight_bits = bits;
            }
            const ModelReport report =
                sim.simulate_model(work, MappingConfig(0));

            DsePoint point;
            point.params = p;
            point.energy_pJ = report.total_energy.total_pJ();
            point.latency_ns = report.total_runtime_ns;
            point.area_mm2 = report.total_area_mm2();
            point.power_W = report.average_power_W();
            point.tops = report.tops();
            if (progress) progress(point);
            result.points.push_back(point);
          }
        }
      }
    }
  }
  for (auto& a : result.points) {
    a.pareto = true;
    for (const auto& b : result.points) {
      if (dominates(b, a)) {
        a.pareto = false;
        break;
      }
    }
  }
  return result;
}

}  // namespace simphony::core
