#include "core/dse.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/hash.h"
#include "util/thread_pool.h"
#include "workload/gemm.h"

namespace simphony::core {

namespace {

std::vector<int> axis_or(const std::vector<int>& axis, int fallback) {
  return axis.empty() ? std::vector<int>{fallback} : axis;
}

struct ParamsHash {
  size_t operator()(const arch::ArchParams& p) const {
    size_t seed = 0;
    util::hash_combine_value(seed, p.tiles);
    util::hash_combine_value(seed, p.cores_per_tile);
    util::hash_combine_value(seed, p.core_height);
    util::hash_combine_value(seed, p.core_width);
    util::hash_combine_value(seed, p.wavelengths);
    util::hash_combine_value(seed, p.clock_GHz);
    util::hash_combine_value(seed, p.input_bits);
    util::hash_combine_value(seed, p.weight_bits);
    util::hash_combine_value(seed, p.output_bits);
    return seed;
  }
};

/// Costs one parameter point.  All heavyweight inputs (templates, library,
/// extracted GEMMs) are shared immutably across concurrent callers; the
/// only per-point allocations are the materialized sub-architectures and a
/// vector of small GemmWorkload records whose weight tensors still point
/// into the caller's Model.  With a mapper set, the point is costed under
/// the layer-to-sub-arch assignment that mapper picks for it; otherwise
/// everything runs on sub-arch 0 (the pre-mapper behavior).
DsePoint evaluate_point(
    const std::vector<std::shared_ptr<const arch::PtcTemplate>>&
        ptc_templates,
    const devlib::DeviceLibrary& lib,
    const std::vector<workload::GemmWorkload>& base_gemms,
    const std::string& model_name, const arch::ArchParams& params,
    bool override_input_bits, bool override_output_bits,
    const Mapper* mapper) {
  std::string arch_name = "dse-" + ptc_templates.front()->name;
  for (size_t t = 1; t < ptc_templates.size(); ++t) {
    arch_name += "+" + ptc_templates[t]->name;
  }
  arch::Architecture system(std::move(arch_name));
  for (const auto& ptc_template : ptc_templates) {
    system.add_subarch(arch::SubArchitecture(ptc_template, params, lib));
  }
  const Simulator sim(std::move(system));

  auto simulate = [&](const std::vector<workload::GemmWorkload>& gemms) {
    if (mapper != nullptr) {
      return sim.simulate_gemms(gemms, *mapper, model_name);
    }
    return sim.simulate_gemms(gemms, MappingConfig(0), model_name);
  };

  ModelReport report;
  if (!override_input_bits && !override_output_bits) {
    report = simulate(base_gemms);
  } else {
    std::vector<workload::GemmWorkload> gemms = base_gemms;
    for (auto& gemm : gemms) {
      // Only an explicitly swept bits axis overrides the per-layer operand
      // resolutions the model carries.
      if (override_input_bits) {
        gemm.input_bits = params.input_bits;
        gemm.weight_bits = params.weight_bits;
      }
      if (override_output_bits) gemm.output_bits = params.output_bits;
    }
    report = simulate(gemms);
  }

  DsePoint point;
  point.params = params;
  point.energy_pJ = report.total_energy.total_pJ();
  point.latency_ns = report.total_runtime_ns;
  point.area_mm2 = report.total_area_mm2();
  point.power_W = report.average_power_W();
  point.tops = report.tops();
  return point;
}

}  // namespace

std::vector<arch::ArchParams> DseSpace::enumerate() const {
  for (int hw : core_sizes) {
    if (hw <= 0) {
      throw std::invalid_argument("core_sizes values must be positive");
    }
  }
  for (int bits : input_bits) {
    if (bits <= 0) {
      throw std::invalid_argument("input_bits values must be positive");
    }
  }
  for (int bits : output_bits) {
    if (bits <= 0) {
      throw std::invalid_argument("output_bits values must be positive");
    }
  }
  std::vector<arch::ArchParams> grid;
  // 0 marks "axis not swept" (rejected above as a user value): the base
  // core_height/core_width pair is kept as-is so a non-square base
  // architecture survives other sweeps, and per-layer output bits stay
  // with the workload.
  for (int tiles : axis_or(this->tiles, base.tiles)) {
    for (int cores : axis_or(cores_per_tile, base.cores_per_tile)) {
      for (int hw : axis_or(core_sizes, 0)) {
        for (int lambda : axis_or(wavelengths, base.wavelengths)) {
          for (int bits : axis_or(input_bits, 0)) {
            for (int out_bits : axis_or(output_bits, 0)) {
              arch::ArchParams p = base;
              p.tiles = tiles;
              p.cores_per_tile = cores;
              if (hw > 0) {
                p.core_height = hw;
                p.core_width = hw;
              }
              p.wavelengths = lambda;
              if (bits > 0) {
                p.input_bits = bits;
                p.weight_bits = bits;
              }  // unswept: keep base input/weight bits, which may differ
              if (out_bits > 0) p.output_bits = out_bits;
              grid.push_back(p);
            }
          }
        }
      }
    }
  }
  return grid;
}

std::vector<DsePoint> DseResult::frontier() const {
  std::vector<DsePoint> out;
  for (const auto& p : points) {
    if (p.pareto) out.push_back(p);
  }
  return out;
}

const DsePoint& DseResult::best_edap() const {
  if (points.empty()) throw std::runtime_error("empty DSE result");
  const DsePoint* best = &points.front();
  for (const auto& p : points) {
    if (p.edap() < best->edap()) best = &p;
  }
  return *best;
}

void mark_pareto_frontier(std::vector<DsePoint>& points) {
  const size_t n = points.size();
  if (n == 0) return;

  // Sort indices lexicographically by (energy, latency, area) ascending.
  // Every point processed before p then has energy <= p's, so p is
  // dominated iff an earlier point with a *different* objective triple has
  // latency <= p's and area <= p's (lexicographic order makes at least one
  // inequality strict).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const DsePoint& pa = points[a];
    const DsePoint& pb = points[b];
    if (pa.energy_pJ != pb.energy_pJ) return pa.energy_pJ < pb.energy_pJ;
    if (pa.latency_ns != pb.latency_ns) return pa.latency_ns < pb.latency_ns;
    return pa.area_mm2 < pb.area_mm2;
  });

  // Staircase of processed non-dominated points: latency -> area, strictly
  // increasing latency mapped to strictly decreasing area, so the entry
  // with the largest latency <= L holds the minimum area over all
  // processed points with latency <= L.
  std::map<double, double> staircase;
  size_t i = 0;
  while (i < n) {
    const DsePoint& p = points[order[i]];
    // Points with identical objective triples never dominate each other:
    // process them as one group so each copy gets the same verdict.
    size_t j = i;
    while (j < n) {
      const DsePoint& q = points[order[j]];
      if (q.energy_pJ != p.energy_pJ || q.latency_ns != p.latency_ns ||
          q.area_mm2 != p.area_mm2) {
        break;
      }
      ++j;
    }

    bool dominated = false;
    auto it = staircase.upper_bound(p.latency_ns);
    if (it != staircase.begin() &&
        std::prev(it)->second <= p.area_mm2) {
      dominated = true;
    }
    for (size_t k = i; k < j; ++k) points[order[k]].pareto = !dominated;

    if (!dominated) {
      // Entries this point covers (latency >= and area >=) add nothing for
      // later queries; drop them to keep the staircase monotone.
      auto at = staircase.lower_bound(p.latency_ns);
      while (at != staircase.end() && at->second >= p.area_mm2) {
        at = staircase.erase(at);
      }
      staircase.emplace(p.latency_ns, p.area_mm2);
    }
    i = j;
  }
}

DseResult explore(const std::vector<arch::PtcTemplate>& ptc_templates,
                  const devlib::DeviceLibrary& lib,
                  const workload::Model& model, const DseSpace& space,
                  const DseOptions& options,
                  const std::function<void(const DsePoint&)>& progress) {
  if (ptc_templates.empty()) {
    throw std::invalid_argument("explore needs at least one PTC template");
  }
  const std::vector<arch::ArchParams> grid = space.enumerate();
  const bool override_input_bits = !space.input_bits.empty();
  const bool override_output_bits = !space.output_bits.empty();

  // Hoisted per-point invariants: shared templates, one GEMM extraction.
  std::vector<std::shared_ptr<const arch::PtcTemplate>> shared_templates;
  shared_templates.reserve(ptc_templates.size());
  for (const auto& ptc_template : ptc_templates) {
    shared_templates.push_back(
        std::make_shared<const arch::PtcTemplate>(ptc_template));
  }
  const std::vector<workload::GemmWorkload> base_gemms =
      workload::extract_gemms(model);

  // Collapse duplicate parameter points: eval_of[g] is the slot in
  // `evaluated` holding grid point g's result; only the first occurrence
  // of each distinct ArchParams is actually simulated.
  std::vector<size_t> eval_of(grid.size());
  std::vector<size_t> unique_grid_index;
  if (options.cache) {
    std::unordered_map<arch::ArchParams, size_t, ParamsHash> slot_of_params;
    slot_of_params.reserve(grid.size());
    for (size_t g = 0; g < grid.size(); ++g) {
      const auto [it, inserted] =
          slot_of_params.try_emplace(grid[g], unique_grid_index.size());
      if (inserted) unique_grid_index.push_back(g);
      eval_of[g] = it->second;
    }
  } else {
    unique_grid_index.resize(grid.size());
    std::iota(unique_grid_index.begin(), unique_grid_index.end(), size_t{0});
    std::iota(eval_of.begin(), eval_of.end(), size_t{0});
  }

  const int requested = options.num_threads;
  // More workers than unique points would just be idle threads (or a
  // resource-exhaustion failure for absurd requests); clamp.
  const unsigned pool_threads = std::min<unsigned>(
      requested <= 0 ? util::ThreadPool::hardware_threads()
                     : static_cast<unsigned>(requested),
      static_cast<unsigned>(
          std::min<size_t>(unique_grid_index.size(), 1024)));
  const int progress_every = std::max(1, options.progress_every);

  std::mutex progress_mutex;
  size_t completed = 0;
  auto report_progress = [&](const DsePoint& point) {
    if (!progress) return;
    std::lock_guard<std::mutex> lock(progress_mutex);
    if (++completed % static_cast<size_t>(progress_every) == 0) {
      progress(point);
    }
  };

  // Evaluate the unique points.  Results are written to indexed slots, so
  // the assembled order below is the grid order no matter which worker
  // finishes first; a given point runs the same instruction sequence on
  // any thread, so results are bit-identical across thread counts.
  std::vector<DsePoint> evaluated(unique_grid_index.size());
  {
    // Everything the tasks touch must outlive the pool: workers are only
    // joined by the pool's destructor, so `failed` (and `pending`) have to
    // be declared before it to survive an exception unwinding this block.
    std::atomic<bool> failed{false};
    std::vector<std::future<void>> pending;
    // 1 thread means "serial": run on the calling thread via the pool's
    // inline mode rather than paying for a worker + queue.
    util::ThreadPool pool(pool_threads <= 1 ? 0 : pool_threads);
    pending.reserve(unique_grid_index.size());
    for (size_t u = 0; u < unique_grid_index.size(); ++u) {
      // One failed point fails the whole sweep: stop feeding the pool (and,
      // in inline mode, stop evaluating) as soon as any task has thrown.
      if (failed.load(std::memory_order_relaxed)) break;
      pending.push_back(pool.submit([&, u] {
        try {
          evaluated[u] = evaluate_point(shared_templates, lib, base_gemms,
                                        model.name,
                                        grid[unique_grid_index[u]],
                                        override_input_bits,
                                        override_output_bits,
                                        options.mapper);
          report_progress(evaluated[u]);  // a throwing callback also aborts
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          throw;  // lands in this task's future
        }
      }));
    }
    try {
      for (auto& f : pending) f.get();  // rethrows worker exceptions
    } catch (...) {
      // Drop everything still queued so the error reaches the caller now,
      // not after the remaining grid.
      pool.cancel();
      throw;
    }
  }

  DseResult result;
  result.points.reserve(grid.size());
  for (size_t g = 0; g < grid.size(); ++g) {
    result.points.push_back(evaluated[eval_of[g]]);
    // Cache hits complete here, not on a worker; count them for progress
    // so callers see every grid point exactly once.
    if (options.cache && unique_grid_index[eval_of[g]] != g) {
      report_progress(result.points.back());
    }
  }

  mark_pareto_frontier(result.points);
  return result;
}

DseResult explore(const arch::PtcTemplate& ptc_template,
                  const devlib::DeviceLibrary& lib,
                  const workload::Model& model, const DseSpace& space,
                  const DseOptions& options,
                  const std::function<void(const DsePoint&)>& progress) {
  return explore(std::vector<arch::PtcTemplate>{ptc_template}, lib, model,
                 space, options, progress);
}

DseResult explore(const arch::PtcTemplate& ptc_template,
                  const devlib::DeviceLibrary& lib,
                  const workload::Model& model, const DseSpace& space,
                  const std::function<void(const DsePoint&)>& progress) {
  return explore(ptc_template, lib, model, space, DseOptions{}, progress);
}

}  // namespace simphony::core
