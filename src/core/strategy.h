// Pluggable exploration strategies for the DSE engine (the ROADMAP's
// "adaptive search" direction), composable in the style of klee-mc's
// lib/Searcher: small strategy objects that propose batches of candidate
// points and consume their evaluated results, stackable (Interleaved)
// into one search policy.
//
// The engine loop behind DseOptions::strategy (core/dse.cpp) is
// fidelity-aware: every candidate carries a FidelityLevel, and the
// evaluator substitutes DseOptions::low_fidelity_mapper (typically a
// GreedyMapper) for the full mapping search on kLow candidates.
// SuccessiveHalvingStrategy exploits this the way klee-mc layers caching
// solvers — run the cheap tier over everything, escalate only the
// survivors — so a sweep pays the expensive mapper for a 1/eta^(rungs-1)
// fraction of the space while the shared CostMatrixCache keeps the
// refinement pass warm.  See docs/strategies.md for the rung math and
// the CLI/JSON surface.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "core/dse.h"

namespace simphony::core {

/// Per-rung evaluation accounting, exposed through
/// ExploreStrategy::rung_stats() (and reported by bench_dse / the
/// "strategy" section of explore responses).
struct RungStats {
  int rung = 0;
  FidelityLevel fidelity = FidelityLevel::kFull;
  /// Candidates the strategy proposed at this rung (its batch size).
  size_t candidates = 0;
  /// Fresh evaluations the engine actually ran for the batch —
  /// candidates minus duplicate-parameter and cross-rung memo hits.
  size_t evaluated = 0;
};

/// "low" | "full" — the spelling rung stats serialize with.
[[nodiscard]] const char* to_string(FidelityLevel fidelity);

/// The propose/consume interface the strategy-driven engine loop talks
/// to.  A strategy is stateful and single-use: begin() starts one
/// exploration, then the engine alternates next_batch() / consume()
/// until next_batch() returns empty, and finish() hands back the
/// slice's result points.
class ExploreStrategy {
 public:
  /// One proposed evaluation: a canonical point index, its parameters,
  /// and the fidelity to cost it at.
  struct Candidate {
    size_t index = 0;
    arch::ArchParams params;
    FidelityLevel fidelity = FidelityLevel::kFull;
  };

  /// What the engine hands begin(): this shard's slice of the canonical
  /// point list (ascending canonical index — every index, including the
  /// ones in `skip_indices`), the full list's size, and the resume-skip
  /// set.  A strategy must not re-propose a skipped index at kFull (the
  /// caller already holds its result and merges it back in), but may
  /// re-evaluate its parameters at kLow so selection ranks stay
  /// identical to the uninterrupted run.
  struct Context {
    std::vector<Candidate> slice;
    size_t total_points = 0;
    const std::unordered_set<size_t>* skip_indices = nullptr;  // not owned

    [[nodiscard]] bool skipped(size_t index) const {
      return skip_indices != nullptr && skip_indices->count(index) != 0;
    }
  };

  virtual ~ExploreStrategy() = default;

  /// Strategy name for reports and request JSON ("one-shot", "halving",
  /// "frontier", "interleaved").
  [[nodiscard]] virtual std::string name() const = 0;

  virtual void begin(Context context) = 0;

  /// The next batch of candidates to evaluate; empty ends the loop.
  /// Within a batch the engine deduplicates identical (params, fidelity)
  /// pairs — also against every earlier batch — and evaluates the rest
  /// in parallel, so the batch is the strategy's parallelism grain.
  [[nodiscard]] virtual std::vector<Candidate> next_batch() = 0;

  /// The last batch's results, in batch order (every candidate gets its
  /// result; memo hits are copies of the first evaluation).
  /// `fresh_evaluations` is how many the engine actually simulated.
  virtual void consume(const std::vector<DsePoint>& evaluated,
                       size_t fresh_evaluations) = 0;

  /// The slice's final result points, in any order — the engine restores
  /// canonical index order and recomputes the Pareto frontier.  Must
  /// exclude skipped indices.
  [[nodiscard]] virtual std::vector<DsePoint> finish() = 0;

  /// Per-rung accounting, appended as rungs complete.
  [[nodiscard]] const std::vector<RungStats>& rung_stats() const {
    return rung_stats_;
  }

 protected:
  std::vector<RungStats> rung_stats_;
};

/// Evaluates every slice point at full fidelity in one batch — the
/// strategy spelling of the legacy engine, bit-identical to explore()
/// with DseOptions::strategy == nullptr (tests/test_strategy.cpp pins
/// this across samplers, mappers, and thread counts).
class OneShotStrategy final : public ExploreStrategy {
 public:
  [[nodiscard]] std::string name() const override { return "one-shot"; }
  void begin(Context context) override;
  [[nodiscard]] std::vector<Candidate> next_batch() override;
  void consume(const std::vector<DsePoint>& evaluated,
               size_t fresh_evaluations) override;
  [[nodiscard]] std::vector<DsePoint> finish() override;

 private:
  Context context_;
  bool proposed_ = false;
  std::vector<DsePoint> results_;
};

/// Multi-fidelity successive halving over the slice.  Rung r holds
/// k_r = max(1, ceil(n / eta^r)) survivors of the slice's n points:
/// every rung before the last evaluates its survivors at kLow (cheap
/// mapper) and keeps the best k_{r+1}; the last rung (index rungs - 1)
/// re-evaluates its k_{rungs-1} survivors at kFull, and only those
/// full-fidelity points form the result.  Selection ranks a point by
/// its best position across the per-objective leaderboards (energy,
/// latency, area, EDAP; canonical index breaks ties), so the cheap
/// tier's argmin of every objective always survives — which is what
/// lets halving recover the frontier's best point per objective while
/// paying full fidelity for a 1/eta^(rungs-1) fraction of the space
/// (tests/test_strategy.cpp asserts both).  Under sharding each shard
/// runs an independent bracket over its own slice; results are
/// deterministic for any thread count, but a merged sharded run keeps
/// per-shard survivor sets rather than the unsharded global bracket.
class SuccessiveHalvingStrategy final : public ExploreStrategy {
 public:
  /// Throws std::invalid_argument unless eta >= 2 and rungs >= 1.
  explicit SuccessiveHalvingStrategy(int eta = 3, int rungs = 2);

  /// Halving driven by an objective spec (core/metrics.h).  The four
  /// legacy leaderboards always run — selection (and therefore every
  /// legacy document) is unchanged for the canned specs — and a
  /// non-canned spec adds one more board ranked by its value(), so the
  /// spec's own argmin always survives to the full-fidelity rung.
  SuccessiveHalvingStrategy(int eta, int rungs, ObjectiveSpec objective);

  [[nodiscard]] std::string name() const override { return "halving"; }
  [[nodiscard]] int eta() const { return eta_; }
  [[nodiscard]] int rungs() const { return rungs_; }
  [[nodiscard]] const ObjectiveSpec& objective() const { return objective_; }

  /// k_r = max(1, ceil(n / eta^r)): survivors entering rung r.
  [[nodiscard]] static size_t rung_survivors(size_t n, int eta, int rung);

  void begin(Context context) override;
  [[nodiscard]] std::vector<Candidate> next_batch() override;
  void consume(const std::vector<DsePoint>& evaluated,
               size_t fresh_evaluations) override;
  [[nodiscard]] std::vector<DsePoint> finish() override;

 private:
  int eta_;
  int rungs_;
  ObjectiveSpec objective_;  // default: canned edp (legacy selection)
  Context context_;
  int rung_ = 0;
  bool awaiting_consume_ = false;
  bool done_ = false;
  std::vector<size_t> survivors_;  // positions into context_.slice
  std::vector<DsePoint> results_;
};

/// Importance-resampling around the Pareto frontier: round 0 evaluates
/// the whole slice at full fidelity (one-shot), then each refine round
/// proposes the axis-neighbors of every current frontier point — the
/// adjacent values of each swept DseSpace axis, deduplicated against
/// everything seen — as new candidates with canonical indices starting
/// at total_points.  All rounds run at kFull; refined points carry
/// their round in DsePoint::rung.  Designed for sampled sweeps (random /
/// LHS), where the frontier's grid neighborhood was likely never drawn;
/// incompatible with sharding and --resume (the engine's caller rejects
/// both — refined indices fall outside the canonical point list).
class FrontierRefineStrategy final : public ExploreStrategy {
 public:
  /// Throws std::invalid_argument when refine_rounds < 1.
  explicit FrontierRefineStrategy(DseSpace space, int refine_rounds = 1);

  /// Refinement around the frontier of an objective spec's pareto_axes
  /// (core/metrics.h): a spec referencing p99_latency steps neighbors of
  /// the tail-latency frontier too.  Canned specs reproduce the legacy
  /// (energy, latency, area) frontier exactly.
  FrontierRefineStrategy(DseSpace space, int refine_rounds,
                         ObjectiveSpec objective);

  [[nodiscard]] std::string name() const override { return "frontier"; }
  [[nodiscard]] int refine_rounds() const { return refine_rounds_; }
  [[nodiscard]] const ObjectiveSpec& objective() const { return objective_; }

  void begin(Context context) override;
  [[nodiscard]] std::vector<Candidate> next_batch() override;
  void consume(const std::vector<DsePoint>& evaluated,
               size_t fresh_evaluations) override;
  [[nodiscard]] std::vector<DsePoint> finish() override;

 private:
  [[nodiscard]] std::vector<Candidate> neighbors_of_frontier();

  DseSpace space_;
  int refine_rounds_;
  ObjectiveSpec objective_;  // default: canned edp (legacy frontier axes)
  Context context_;
  int round_ = 0;  // 0 = base one-shot pass, 1.. = refine rounds
  bool awaiting_consume_ = false;
  bool done_ = false;
  size_t next_index_ = 0;
  std::unordered_set<arch::ArchParams, ArchParamsHash> seen_;
  std::vector<DsePoint> results_;
};

/// klee-mc-style combinator: round-robins next_batch() over child
/// strategies (each child sees the full Context), routing every
/// consume() to the child that proposed the batch.  finish()
/// concatenates the children's results in child order, dropping
/// duplicate canonical indices (first child wins).  Children are not
/// owned and must outlive the combinator.  Library-level composition
/// tool: not reachable from the CLI/JSON surface, and not meant for
/// streaming sinks when children overlap (duplicate indices would be
/// streamed twice).
class InterleavedStrategy final : public ExploreStrategy {
 public:
  /// Throws std::invalid_argument on an empty child list.
  explicit InterleavedStrategy(std::vector<ExploreStrategy*> children);

  [[nodiscard]] std::string name() const override { return "interleaved"; }

  void begin(Context context) override;
  [[nodiscard]] std::vector<Candidate> next_batch() override;
  void consume(const std::vector<DsePoint>& evaluated,
               size_t fresh_evaluations) override;
  [[nodiscard]] std::vector<DsePoint> finish() override;

 private:
  std::vector<ExploreStrategy*> children_;
  size_t cursor_ = 0;    // next child to ask
  size_t proposer_ = 0;  // child that produced the batch in flight
  bool awaiting_consume_ = false;
};

}  // namespace simphony::core
