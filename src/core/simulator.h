// SimPhony-Sim: the end-to-end simulation flow (paper §III-C, Fig. 1).
//
//   workload extraction -> dataflow mapping -> memory construction ->
//   link budget -> data-aware energy -> layout-aware area
//
// The Simulator owns an Architecture (one or more sub-architectures sharing
// a memory hierarchy) and simulates extracted GEMM workloads or whole
// models under a MappingConfig.
#pragma once

#include <memory>
#include <vector>

#include "arch/hierarchy.h"
#include "core/mapper.h"
#include "core/mapping.h"
#include "core/report.h"
#include "devlib/power_model.h"
#include "energy/energy_model.h"
#include "layout/area.h"
#include "memory/hierarchy.h"
#include "workload/model.h"

namespace simphony::core {

struct SimulationOptions {
  energy::EnergyOptions energy;
  layout::AreaOptions area;
  memory::MemoryOptions memory;

  /// Optional cross-call memoization of per-(sub-arch, GEMM) cost-matrix
  /// entries (see CostMatrixCache in core/mapper.h).  Not owned; must
  /// outlive the Simulator.  Thread-safe, so one cache may back every
  /// Simulator of a DSE sweep; results are bit-identical with and
  /// without it.
  CostMatrixCache* cost_cache = nullptr;
};

class Simulator {
 public:
  Simulator(arch::Architecture architecture, SimulationOptions options = {});

  [[nodiscard]] const arch::Architecture& architecture() const {
    return architecture_;
  }
  [[nodiscard]] const SimulationOptions& options() const { return options_; }

  /// Simulate one GEMM on a specific sub-architecture, sizing a dedicated
  /// memory hierarchy for it.  Throws std::invalid_argument when
  /// `subarch_index` is out of range.
  [[nodiscard]] LayerReport simulate_gemm(
      size_t subarch_index, const workload::GemmWorkload& gemm) const;

  /// Simulate a whole model under a mapping config: extract GEMMs, size the
  /// shared memory hierarchy, map + cost every layer, aggregate.
  /// Equivalent to the Mapper overload with RuleMapper(mapping).
  [[nodiscard]] ModelReport simulate_model(const workload::Model& model,
                                           const MappingConfig& mapping) const;

  /// Simulate a whole model under a mapping *strategy*: extract GEMMs,
  /// size the shared memory hierarchy, build the per-(sub-arch, GEMM)
  /// CostMatrix (when the strategy consults costs), let the Mapper choose
  /// the assignment, and assemble the report from the matrix so chosen
  /// pairs are never simulated twice.  `chosen` (optional) receives the
  /// selected Mapping.
  [[nodiscard]] ModelReport simulate_model(const workload::Model& model,
                                           const Mapper& mapper,
                                           Mapping* chosen = nullptr) const;

  /// Same flow for GEMMs that were already extracted (the DSE engine
  /// extracts once and re-costs the same workloads at many parameter
  /// points).  `model_name` only labels the report.  The Tensor weights the
  /// GEMMs point into must outlive the call.
  [[nodiscard]] ModelReport simulate_gemms(
      const std::vector<workload::GemmWorkload>& gemms,
      const MappingConfig& mapping, const std::string& model_name = "") const;

  /// Mapper-strategy variant of simulate_gemms (see the simulate_model
  /// overload above).
  [[nodiscard]] ModelReport simulate_gemms(
      const std::vector<workload::GemmWorkload>& gemms, const Mapper& mapper,
      const std::string& model_name = "", Mapping* chosen = nullptr) const;

  /// Simulates every (GEMM, sub-arch) pair against a shared memory
  /// hierarchy sized for `gemms`.  Pairs the architecture cannot run (e.g.
  /// dynamic tensor products on a static mesh) come back infeasible with
  /// the simulator's diagnostic instead of throwing.  With
  /// SimulationOptions::cost_cache set, pairs whose canonical
  /// (sub-arch parameterization, GEMM) fingerprint was already simulated —
  /// by this Simulator or any other sharing the cache — are fetched
  /// instead of re-simulated.
  [[nodiscard]] CostMatrix build_cost_matrix(
      const std::vector<workload::GemmWorkload>& gemms) const;

  /// Area-only analysis (used by the Fig. 7a/8a/10a benches).
  [[nodiscard]] layout::AreaBreakdown analyze_area(size_t subarch_index) const;

 private:
  arch::Architecture architecture_;
  SimulationOptions options_;

  [[nodiscard]] LayerReport simulate_one(
      size_t subarch_index, const workload::GemmWorkload& gemm,
      const memory::MemoryHierarchy& memory) const;

  [[nodiscard]] memory::MemoryHierarchy build_shared_memory(
      const std::vector<workload::GemmWorkload>& gemms) const;

  [[nodiscard]] CostMatrix build_cost_matrix(
      const std::vector<workload::GemmWorkload>& gemms,
      const memory::MemoryHierarchy& memory) const;
};

}  // namespace simphony::core
