// SimPhony-Sim: the end-to-end simulation flow (paper §III-C, Fig. 1).
//
//   workload extraction -> dataflow mapping -> memory construction ->
//   link budget -> data-aware energy -> layout-aware area
//
// The Simulator owns an Architecture (one or more sub-architectures sharing
// a memory hierarchy) and simulates extracted GEMM workloads or whole
// models under a MappingConfig.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "arch/hierarchy.h"
#include "core/mapper.h"
#include "core/mapping.h"
#include "core/options.h"
#include "core/report.h"
#include "core/workload_set.h"
#include "devlib/power_model.h"
#include "energy/energy_model.h"
#include "layout/area.h"
#include "memory/hierarchy.h"
#include "workload/model.h"

namespace simphony::core {

/// Construction-time knobs of a Simulator.  The inherited CommonOptions
/// block (core/options.h) is the Simulator-level default: cost_cache is
/// the cross-call memoization every simulation of this Simulator
/// consults (see CostMatrixCache in core/mapper.h — not owned, must
/// outlive the Simulator, thread-safe, results bit-identical with and
/// without it); num_threads and the progress hooks are defaults for
/// entry points that take no per-call options.  Per-call options
/// (BatchOptions) override the inherited fields where documented.
struct SimulationOptions : CommonOptions {
  energy::EnergyOptions energy;
  layout::AreaOptions area;
  memory::MemoryOptions memory;
};

/// Per-call knobs for Simulator::simulate_batch — exactly the shared
/// CommonOptions block.  num_threads: models simulated concurrently on a
/// util::ThreadPool (never more workers than models; with a parallel
/// batch, prefer serial mappers — a mapper running its own pool inside
/// every batch worker oversubscribes the machine).  cost_cache: when
/// non-null, overrides the Simulator's SimulationOptions attachment for
/// this batch.  on_progress fires per completed model (monotone count
/// under one mutex, final callback at completed == size() — see
/// CommonOptions::progress_every).
struct BatchOptions : CommonOptions {};

/// Totals-only result of the simulate_gemms flow: exactly the figures the
/// DSE engine folds into a DsePoint, accumulated straight from the cost
/// matrix without materializing (or copying) per-layer reports — the
/// per-design-point hot path of a sweep.  Every accumulation runs in the
/// same order as ModelReport assembly and every derived formula mirrors
/// ModelReport's, so the figures are bit-identical to the full-report
/// path (tests/test_dse.cpp, tests/test_alloc_count.cpp).
struct ModelTotals {
  energy::EnergyBreakdown energy;
  double runtime_ns = 0.0;
  double macs = 0.0;
  double memory_area_mm2 = 0.0;
  double subarch_area_mm2 = 0.0;  // sum of per-sub-arch breakdown totals

  [[nodiscard]] double energy_pJ() const { return energy.total_pJ(); }
  [[nodiscard]] double total_area_mm2() const {
    return memory_area_mm2 + subarch_area_mm2;
  }
  [[nodiscard]] double average_power_W() const {
    if (runtime_ns <= 0) return 0.0;
    return energy.total_pJ() / runtime_ns * 1e-3;  // pJ/ns = mW; * 1e-3 = W
  }
  [[nodiscard]] double tops() const {
    if (runtime_ns <= 0) return 0.0;
    return 2.0 * macs / runtime_ns * 1e-3;  // 2 ops per MAC
  }
};

/// Result of simulating a WorkloadSet: one ModelReport + chosen Mapping
/// per model (in set order) plus aggregate batch totals.
struct BatchReport {
  struct ModelResult {
    std::string name;
    double weight = 1.0;
    ModelReport report;
    Mapping mapping;  // the assignment the Mapper chose for this model
  };

  /// Aggregate figures of the whole batch.  energy / latency / macs fold
  /// per-model values under the chosen BatchAggregate; area is the MAX
  /// over per-model areas for every mode (one chip must fit the largest
  /// per-model memory sizing — areas do not add across models).  Power
  /// and TOPS are derived from the aggregated energy / latency / macs
  /// for kSum / kWeighted; under kMax they are the per-model worst cases
  /// (max power, min TOPS) — a ratio of independently-maxed energy and
  /// latency would be a figure no model exhibits.
  struct Totals {
    double energy_pJ = 0.0;
    double latency_ns = 0.0;
    double area_mm2 = 0.0;
    double macs = 0.0;
    double power_W = 0.0;  // 0 when latency is 0 and the batch is empty
    double tops = 0.0;
  };

  std::vector<ModelResult> models;  // WorkloadSet order

  [[nodiscard]] Totals totals(BatchAggregate aggregate) const;
};

class Simulator {
 public:
  Simulator(arch::Architecture architecture, SimulationOptions options = {});

  [[nodiscard]] const arch::Architecture& architecture() const {
    return architecture_;
  }
  [[nodiscard]] const SimulationOptions& options() const { return options_; }

  /// Simulate one GEMM on a specific sub-architecture, sizing a dedicated
  /// memory hierarchy for it.  Throws std::invalid_argument when
  /// `subarch_index` is out of range.
  [[nodiscard]] LayerReport simulate_gemm(
      size_t subarch_index, const workload::GemmWorkload& gemm) const;

  /// Simulate a whole model under a mapping config: extract GEMMs, size the
  /// shared memory hierarchy, map + cost every layer, aggregate.
  /// Equivalent to the Mapper overload with RuleMapper(mapping).
  [[nodiscard]] ModelReport simulate_model(const workload::Model& model,
                                           const MappingConfig& mapping) const;

  /// Simulate a whole model under a mapping *strategy*: extract GEMMs,
  /// size the shared memory hierarchy, build the per-(sub-arch, GEMM)
  /// CostMatrix (when the strategy consults costs), let the Mapper choose
  /// the assignment, and assemble the report from the matrix so chosen
  /// pairs are never simulated twice.  `chosen` (optional) receives the
  /// selected Mapping.
  [[nodiscard]] ModelReport simulate_model(const workload::Model& model,
                                           const Mapper& mapper,
                                           Mapping* chosen = nullptr) const;

  /// Same flow for GEMMs that were already extracted (the DSE engine
  /// extracts once and re-costs the same workloads at many parameter
  /// points).  `model_name` only labels the report.  The Tensor weights the
  /// GEMMs point into must outlive the call.
  [[nodiscard]] ModelReport simulate_gemms(
      const std::vector<workload::GemmWorkload>& gemms,
      const MappingConfig& mapping, const std::string& model_name = "") const;

  /// Mapper-strategy variant of simulate_gemms (see the simulate_model
  /// overload above).
  [[nodiscard]] ModelReport simulate_gemms(
      const std::vector<workload::GemmWorkload>& gemms, const Mapper& mapper,
      const std::string& model_name = "", Mapping* chosen = nullptr) const;

  /// The simulate_gemms flow reduced to its totals (see ModelTotals): the
  /// same memory sizing, cost matrix, and mapping search, but energy /
  /// runtime / MACs are accumulated directly from the matrix entries
  /// instead of copying every chosen LayerReport into a ModelReport.
  /// `gemm_keys` (optional) are precomputed core::gemm_fingerprint values
  /// for `gemms` in order — e.g. WorkloadSet::Entry::gemm_fingerprints —
  /// sparing the per-call weight-content hashing when a cost cache is
  /// attached; pass nullptr to compute them on the fly.
  [[nodiscard]] ModelTotals simulate_gemms_totals(
      const std::vector<workload::GemmWorkload>& gemms, const Mapper& mapper,
      Mapping* chosen = nullptr, const uint64_t* gemm_keys = nullptr) const;

  /// Batched multi-model simulation: every model of the set runs against
  /// THIS architecture — constructed (sub-arches materialized, device
  /// groups resolved) once, when the Simulator was built — with per-model
  /// parallelism on a util::ThreadPool and SimulationOptions::cost_cache
  /// (when set) shared across the whole batch.
  ///
  /// Each model follows exactly the simulate_gemms flow on its
  /// pre-extracted GEMMs: the mapping search and the memory-hierarchy
  /// sizing stay per-model, so the batch is bit-identical to K
  /// independent simulate_model calls on this architecture, for every
  /// mapper, objective, and thread count (tests/test_batch.cpp).  One
  /// failing model fails the batch with that model's diagnostic.
  [[nodiscard]] BatchReport simulate_batch(
      const WorkloadSet& workloads, const Mapper& mapper,
      const BatchOptions& options = {}) const;

  /// Simulates every (GEMM, sub-arch) pair against a shared memory
  /// hierarchy sized for `gemms`.  Pairs the architecture cannot run (e.g.
  /// dynamic tensor products on a static mesh) come back infeasible with
  /// the simulator's diagnostic instead of throwing.  With
  /// SimulationOptions::cost_cache set, pairs whose canonical
  /// (sub-arch parameterization, GEMM) fingerprint was already simulated —
  /// by this Simulator or any other sharing the cache — are fetched
  /// instead of re-simulated.
  [[nodiscard]] CostMatrix build_cost_matrix(
      const std::vector<workload::GemmWorkload>& gemms) const;

  /// Area-only analysis (used by the Fig. 7a/8a/10a benches).
  [[nodiscard]] layout::AreaBreakdown analyze_area(size_t subarch_index) const;

 private:
  arch::Architecture architecture_;
  SimulationOptions options_;
  /// Per-sub-arch prefix of the hardware-side cache fingerprint: the
  /// template / groups / params / device-library / energy-option hash,
  /// which never changes after construction.  Only the memory-hierarchy
  /// suffix (per GEMM set) is hashed per call.  Computed iff a cost cache
  /// is attached — the values, and the final fingerprints they produce,
  /// are identical to hashing everything in one pass.
  std::vector<size_t> subarch_static_seeds_;

  /// Everything shared by full-report and totals-only assembly: sized
  /// memory, optional cost matrix, and the checked mapping.
  struct MappingPlan {
    memory::MemoryHierarchy memory;
    std::optional<CostMatrix> costs;
    Mapping mapping;
  };

  [[nodiscard]] LayerReport simulate_one(
      size_t subarch_index, const workload::GemmWorkload& gemm,
      const memory::MemoryHierarchy& memory) const;

  [[nodiscard]] memory::MemoryHierarchy build_shared_memory(
      const std::vector<workload::GemmWorkload>& gemms) const;

  /// `cache_override` (here and below): non-null replaces the
  /// construction-time SimulationOptions::cost_cache for this call — the
  /// BatchOptions::cost_cache per-call override.
  [[nodiscard]] CostMatrix build_cost_matrix(
      const std::vector<workload::GemmWorkload>& gemms,
      const memory::MemoryHierarchy& memory, const uint64_t* gemm_keys,
      CostMatrixCache* cache_override = nullptr) const;

  /// validate + build_shared_memory + build_cost_matrix (when the
  /// strategy consults costs) + map + assignment size/range checks.
  [[nodiscard]] MappingPlan plan_mapping(
      const std::vector<workload::GemmWorkload>& gemms, const Mapper& mapper,
      const uint64_t* gemm_keys,
      CostMatrixCache* cache_override = nullptr) const;

  [[nodiscard]] ModelReport simulate_gemms_report(
      const std::vector<workload::GemmWorkload>& gemms, const Mapper& mapper,
      const std::string& model_name, Mapping* chosen,
      const uint64_t* gemm_keys,
      CostMatrixCache* cache_override = nullptr) const;
};

}  // namespace simphony::core
