// The shared execution knobs of every long-running engine entry point.
//
// SimulationOptions (core/simulator.h), BatchOptions (simulate_batch) and
// DseOptions (core/dse.h) grew the same three knobs independently —
// num_threads, cost_cache, and progress hooks — and the request types of
// the service facade (core/engine.h) would have inherited that drift.
// CommonOptions is the single definition all of them embed: one
// num_threads convention (util::ThreadPool::workers_for), one cost-cache
// attachment point, one progress-milestone contract.
#pragma once

#include <cstddef>
#include <functional>

namespace simphony::core {

class CostMatrixCache;

/// Generic progress snapshot: how many work items (design points, batch
/// models, ...) have completed out of how many.  Subsystems with richer
/// payloads derive from it (DseProgress adds the completed point) so
/// generic observers — the engine facade, the server's streaming
/// progress — can consume every entry point through one type.
struct Progress {
  size_t completed = 0;
  size_t total = 0;
};

/// Shared knobs embedded by SimulationOptions, BatchOptions and
/// DseOptions (and mirrored, value-only, by the serializable request
/// types in core/engine.h).
struct CommonOptions {
  /// Worker threads, resolved through util::ThreadPool::workers_for —
  /// the engine-wide convention: 0 = one per hardware thread, 1 = serial
  /// on the calling thread, negative throws std::invalid_argument from
  /// the entry point.
  int num_threads = 0;

  /// Optional cross-call memoization of per-(sub-arch, GEMM) cost-matrix
  /// entries (CostMatrixCache in core/mapper.h).  Not owned; must outlive
  /// the call.  Thread-safe and first-writer-wins, so results are
  /// bit-identical with and without it for any thread count.  Per-call
  /// options (BatchOptions, DseOptions) override a Simulator-level
  /// attachment when non-null.
  CostMatrixCache* cost_cache = nullptr;

  /// Invoke the progress observers every N completed work items (1 =
  /// every item).  Observers are serialized behind a mutex, the completed
  /// count is monotone, and — whatever N is — the final item of a
  /// non-empty run always fires exactly one callback at
  /// completed == total.
  int progress_every = 1;

  /// Generic progress observer (see Progress above).  Subsystems with a
  /// richer typed observer (DseOptions::on_progress) fire BOTH when both
  /// are set; this one exists so generic callers — core::Engine, the
  /// simphonyd progress stream — need not know the subsystem's payload.
  std::function<void(const Progress&)> on_progress;
};

}  // namespace simphony::core
