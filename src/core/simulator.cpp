#include "core/simulator.h"

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "core/fingerprint.h"
#include "util/arena.h"
#include "util/hash.h"
#include "util/thread_pool.h"
#include "workload/gemm.h"

namespace simphony::core {

namespace {

/// Construction-invariant prefix of the hardware-side half of a
/// CostMatrixCache key: everything simulate_one reads that is fixed once
/// the Simulator exists — template structure, materialized instance
/// groups (the symbolic scaling rules evaluated at this parameter point),
/// ArchParams, device-library content, and the energy options.  The
/// per-call memory-hierarchy suffix is appended by
/// finish_subarch_fingerprint; the two-step sequence hashes exactly the
/// same values in exactly the same order as the original one-pass
/// fingerprint, so persisted caches (docs/persistence.md) stay valid.
size_t subarch_static_fingerprint(const arch::SubArchitecture& subarch,
                                  const SimulationOptions& options) {
  size_t seed = 0;
  const arch::PtcTemplate& t = subarch.ptc();
  util::hash_combine_value(seed, t.name);
  util::hash_combine_value(seed, t.node_instance);
  util::hash_combine_value(seed, t.reconfig_latency_ns);
  util::hash_combine_value(seed, t.output_stationary);
  util::hash_combine_value(seed, t.core_routing_overhead);
  util::hash_combine_value(seed,
                           static_cast<int>(t.taxonomy.operand_a.range));
  util::hash_combine_value(seed,
                           static_cast<int>(t.taxonomy.operand_a.reconfig));
  util::hash_combine_value(seed,
                           static_cast<int>(t.taxonomy.operand_b.range));
  util::hash_combine_value(seed,
                           static_cast<int>(t.taxonomy.operand_b.reconfig));
  util::hash_combine_value(seed, static_cast<int>(t.taxonomy.method));
  // The arch-level connectivity feeds the link-budget DAG; endpoint names
  // are enough to tell templates apart alongside the group list below.
  util::hash_combine_value(seed, t.nets.size());
  for (const auto& net : t.nets) {
    util::hash_combine_value(seed, net.src);
    util::hash_combine_value(seed, net.dst);
  }
  for (const auto& group : subarch.groups()) {
    util::hash_combine_value(seed, group.spec->name);
    util::hash_combine_value(seed, group.spec->device);
    util::hash_combine_value(seed, static_cast<int>(group.spec->role));
    util::hash_combine_value(seed, group.spec->on_optical_path);
    util::hash_combine_value(seed, group.count);
    util::hash_combine_value(seed, group.unit_area_um2);
    util::hash_combine_value(seed, group.path_loss_dB);
  }
  const arch::ArchParams& p = subarch.params();
  util::hash_combine_value(seed, p.tiles);
  util::hash_combine_value(seed, p.cores_per_tile);
  util::hash_combine_value(seed, p.core_height);
  util::hash_combine_value(seed, p.core_width);
  util::hash_combine_value(seed, p.wavelengths);
  util::hash_combine_value(seed, p.clock_GHz);
  util::hash_combine_value(seed, p.input_bits);
  util::hash_combine_value(seed, p.weight_bits);
  util::hash_combine_value(seed, p.output_bits);
  // The device library enters by *content*, not address: a sweep loop
  // rebuilding library variants at a recycled address while sharing one
  // cache must never collide with an earlier variant's costs.
  const devlib::DeviceLibrary& lib = subarch.library();
  util::hash_combine_value(seed, lib.size());
  for (const std::string& device_name : lib.names()) {
    const devlib::DeviceParams& device = lib.get(device_name);
    util::hash_combine_value(seed, device.name);
    util::hash_combine_value(seed, static_cast<int>(device.category));
    util::hash_combine_value(seed, device.footprint.width_um);
    util::hash_combine_value(seed, device.footprint.height_um);
    util::hash_combine_value(seed, device.insertion_loss_dB);
    util::hash_combine_value(seed, device.static_power_mW);
    util::hash_combine_value(seed, device.dynamic_energy_fJ);
    util::hash_combine_value(seed, device.latency_ns);
    util::hash_combine_value(seed, device.bandwidth_GHz);
    for (const auto& [key, value] : device.extra) {
      util::hash_combine_value(seed, key);
      util::hash_combine_value(seed, value);
    }
  }
  util::hash_combine_value(seed,
                           static_cast<int>(options.energy.fidelity));
  util::hash_combine_value(seed, options.energy.data_aware);
  util::hash_combine_value(seed, options.energy.include_data_movement);
  return seed;
}

/// Appends the per-call memory-hierarchy suffix to a static prefix seed,
/// producing the full hardware-side fingerprint.
uint64_t finish_subarch_fingerprint(size_t seed,
                                    const memory::MemoryHierarchy& memory) {
  for (const memory::MemoryLevel* level :
       {&memory.hbm, &memory.glb, &memory.lb, &memory.rf}) {
    util::hash_combine_value(seed, level->capacity_kB);
    util::hash_combine_value(seed, level->bandwidth_GBps);
    util::hash_combine_value(seed, level->read_energy_pJ_per_bit);
    util::hash_combine_value(seed, level->write_energy_pJ_per_bit);
    util::hash_combine_value(seed, level->leakage_mW);
    util::hash_combine_value(seed, level->blocks);
    util::hash_combine_value(seed, level->cycle_ns);
  }
  util::hash_combine_value(seed, memory.glb_demand_GBps);
  return static_cast<uint64_t>(seed);
}

}  // namespace

/// Workload-side half of the key (declared in core/fingerprint.h so
/// WorkloadSet::add can pre-compute it once per sweep).  The layer *name*
/// is deliberately excluded (identical layers share an entry; identity
/// fields are rewritten at report-assembly time), while the weight
/// tensor's content is included because the energy model is data-aware.
uint64_t gemm_fingerprint(const workload::GemmWorkload& gemm) {
  size_t seed = 0x67656d6d;  // "gemm": decorrelates from the subarch side
  util::hash_combine_value(seed, gemm.n);
  util::hash_combine_value(seed, gemm.d);
  util::hash_combine_value(seed, gemm.m);
  util::hash_combine_value(seed, gemm.batch);
  util::hash_combine_value(seed, gemm.input_bits);
  util::hash_combine_value(seed, gemm.weight_bits);
  util::hash_combine_value(seed, gemm.output_bits);
  util::hash_combine_value(seed, gemm.b_dynamic);
  util::hash_combine_value(seed, gemm.sparsity);
  util::hash_combine_value(seed, static_cast<int>(gemm.source_type));
  util::hash_combine_value(seed, gemm.weights != nullptr);
  if (gemm.weights != nullptr) {
    for (int64_t dim : gemm.weights->shape()) {
      util::hash_combine_value(seed, dim);
    }
    const std::vector<float>& data = gemm.weights->data();
    util::hash_combine(
        seed, util::fnv1a_bytes(data.data(), data.size() * sizeof(float)));
  }
  return static_cast<uint64_t>(seed);
}

Simulator::Simulator(arch::Architecture architecture,
                     SimulationOptions options)
    : architecture_(std::move(architecture)), options_(std::move(options)) {
  if (architecture_.subarch_count() == 0) {
    throw std::invalid_argument(
        "Simulator needs an architecture with >= 1 sub-architecture");
  }
  // Static cache-key prefixes are computed even without a construction-
  // time cache attachment: BatchOptions::cost_cache may attach one
  // per-call, and the one-time hash of the template structure is cheap
  // next to materializing the architecture.
  subarch_static_seeds_.reserve(architecture_.subarch_count());
  for (size_t s = 0; s < architecture_.subarch_count(); ++s) {
    subarch_static_seeds_.push_back(
        subarch_static_fingerprint(architecture_.subarch(s), options_));
  }
}

LayerReport Simulator::simulate_one(
    size_t subarch_index, const workload::GemmWorkload& gemm,
    const memory::MemoryHierarchy& memory) const {
  const arch::SubArchitecture& subarch =
      architecture_.subarch(subarch_index);

  LayerReport report;
  report.layer_name = gemm.name;
  report.subarch_name = subarch.name();
  report.subarch_index = subarch_index;
  report.macs = static_cast<double>(gemm.macs());

  report.dataflow =
      dataflow::map_gemm(subarch, gemm, memory.glb.bandwidth_GBps);
  report.link = arch::analyze_link_budget(subarch, gemm.input_bits);
  report.traffic =
      memory::analyze_traffic(subarch, gemm, report.dataflow, memory);
  report.energy = energy::compute_energy(
      subarch, gemm, report.dataflow, report.link,
      options_.energy.include_data_movement ? &report.traffic : nullptr,
      options_.energy);
  return report;
}

LayerReport Simulator::simulate_gemm(size_t subarch_index,
                                     const workload::GemmWorkload& gemm) const {
  if (subarch_index >= architecture_.subarch_count()) {
    throw std::invalid_argument(
        "simulate_gemm: sub-arch index " + std::to_string(subarch_index) +
        " out of range (architecture '" + architecture_.name() + "' has " +
        std::to_string(architecture_.subarch_count()) +
        " sub-architecture(s))");
  }
  const arch::SubArchitecture& subarch =
      architecture_.subarch(subarch_index);
  const memory::MemoryHierarchy memory = memory::build_memory_hierarchy(
      {&subarch}, {gemm}, options_.memory);
  return simulate_one(subarch_index, gemm, memory);
}

memory::MemoryHierarchy Simulator::build_shared_memory(
    const std::vector<workload::GemmWorkload>& gemms) const {
  std::vector<const arch::SubArchitecture*> subarch_ptrs;
  for (size_t i = 0; i < architecture_.subarch_count(); ++i) {
    subarch_ptrs.push_back(&architecture_.subarch(i));
  }
  return memory::build_memory_hierarchy(subarch_ptrs, gemms,
                                        options_.memory);
}

CostMatrix Simulator::build_cost_matrix(
    const std::vector<workload::GemmWorkload>& gemms,
    const memory::MemoryHierarchy& memory, const uint64_t* gemm_keys,
    CostMatrixCache* cache_override) const {
  CostMatrixCache* cache =
      cache_override != nullptr ? cache_override : options_.cost_cache;
  const size_t S = architecture_.subarch_count();

  // Fingerprints are computed once per side, not once per pair; the key
  // arrays are thread-local arena scratch so the warm-cache path touches
  // the heap only for genuinely new matrix entries.
  util::Arena& arena = util::thread_scratch();
  util::ArenaScope scope(arena);
  uint64_t* subarch_keys = nullptr;
  if (cache != nullptr) {
    subarch_keys = arena.allocate_array<uint64_t>(S);
    for (size_t s = 0; s < S; ++s) {
      subarch_keys[s] =
          finish_subarch_fingerprint(subarch_static_seeds_[s], memory);
    }
    if (gemm_keys == nullptr) {
      // The workload side hashes the weight tensors' content, which would
      // otherwise dominate matrix assembly; callers that sweep the same
      // GEMMs across many points pass precomputed keys instead.
      uint64_t* local = arena.allocate_array<uint64_t>(gemms.size());
      for (size_t g = 0; g < gemms.size(); ++g) {
        local[g] = gemm_fingerprint(gemms[g]);
      }
      gemm_keys = local;
    }
  }

  CostMatrix costs(gemms.size(), S);
  for (size_t g = 0; g < gemms.size(); ++g) {
    for (size_t s = 0; s < S; ++s) {
      const CostMatrixCache::Key key{cache ? subarch_keys[s] : 0,
                                     cache ? gemm_keys[g] : 0};
      if (cache != nullptr) {
        if (auto cached = cache->find(key)) {
          // Hits alias the cache's entry — no deep copy of the
          // LayerReport.  The canonical key excludes identity fields, so
          // the shared entry keeps the donor's; report assembly rewrites
          // them for this architecture and layer.
          costs.set(g, s, std::move(cached));
          continue;
        }
      }
      CostMatrix::Entry entry;
      try {
        entry.report = simulate_one(s, gemms[g], memory);
        entry.feasible = true;
      } catch (const std::invalid_argument& e) {
        // The simulator rejects workload/hardware mismatches (e.g. a
        // dynamic tensor product on a static mesh) with invalid_argument;
        // that is an infeasible pair the search routes around.  Anything
        // else is a genuine failure and must propagate, not silently
        // become a routing decision.
        entry.error = e.what();
      }
      // Only feasible entries are memoized: infeasibility diagnostics
      // embed the layer's own name (which the canonical key excludes),
      // and a cached copy would cite the donor layer.  Detecting
      // infeasibility is cheap — the simulator rejects the pair before
      // any costly analysis.  The matrix stores the cache's own pointer,
      // so a later hit in this same sweep shares it too.
      if (cache != nullptr && entry.feasible) {
        costs.set(g, s, cache->insert(key, std::move(entry)));
      } else {
        costs.set(g, s, std::move(entry));
      }
    }
  }
  return costs;
}

CostMatrix Simulator::build_cost_matrix(
    const std::vector<workload::GemmWorkload>& gemms) const {
  return build_cost_matrix(gemms, build_shared_memory(gemms), nullptr);
}

ModelReport Simulator::simulate_model(const workload::Model& model,
                                      const MappingConfig& mapping) const {
  return simulate_gemms(workload::extract_gemms(model), mapping, model.name);
}

ModelReport Simulator::simulate_model(const workload::Model& model,
                                      const Mapper& mapper,
                                      Mapping* chosen) const {
  return simulate_gemms(workload::extract_gemms(model), mapper, model.name,
                        chosen);
}

ModelReport Simulator::simulate_gemms(
    const std::vector<workload::GemmWorkload>& gemms,
    const MappingConfig& mapping, const std::string& model_name) const {
  return simulate_gemms(gemms, RuleMapper(mapping), model_name);
}

ModelReport Simulator::simulate_gemms(
    const std::vector<workload::GemmWorkload>& gemms, const Mapper& mapper,
    const std::string& model_name, Mapping* chosen) const {
  return simulate_gemms_report(gemms, mapper, model_name, chosen, nullptr);
}

Simulator::MappingPlan Simulator::plan_mapping(
    const std::vector<workload::GemmWorkload>& gemms, const Mapper& mapper,
    const uint64_t* gemm_keys, CostMatrixCache* cache_override) const {
  const auto problems = mapper.validate(architecture_);
  if (!problems.empty()) {
    // Report every validation problem, not just the first one found.
    std::string message = "invalid mapping config: " + problems[0];
    for (size_t i = 1; i < problems.size(); ++i) {
      message += "; " + problems[i];
    }
    throw std::invalid_argument(message);
  }

  MappingPlan plan;
  plan.memory = build_shared_memory(gemms);

  MappingProblem problem;
  problem.gemms = &gemms;
  problem.subarch_count = architecture_.subarch_count();
  if (mapper.needs_costs()) {
    plan.costs.emplace(
        build_cost_matrix(gemms, plan.memory, gemm_keys, cache_override));
    problem.costs = &*plan.costs;
  }

  plan.mapping = mapper.map(problem);
  if (plan.mapping.assignment.size() != gemms.size()) {
    throw std::logic_error(
        "mapper '" + mapper.name() + "' returned " +
        std::to_string(plan.mapping.assignment.size()) + " assignments for " +
        std::to_string(gemms.size()) + " GEMMs");
  }
  for (size_t g = 0; g < gemms.size(); ++g) {
    if (plan.mapping.assignment[g] >= architecture_.subarch_count()) {
      throw std::invalid_argument(
          "mapper '" + mapper.name() + "' routed GEMM '" + gemms[g].name +
          "' to sub-arch index " + std::to_string(plan.mapping.assignment[g]) +
          " but architecture '" + architecture_.name() + "' has only " +
          std::to_string(architecture_.subarch_count()) +
          " sub-architecture(s)");
    }
  }
  return plan;
}

ModelReport Simulator::simulate_gemms_report(
    const std::vector<workload::GemmWorkload>& gemms, const Mapper& mapper,
    const std::string& model_name, Mapping* chosen,
    const uint64_t* gemm_keys, CostMatrixCache* cache_override) const {
  MappingPlan plan = plan_mapping(gemms, mapper, gemm_keys, cache_override);
  const std::optional<CostMatrix>& costs = plan.costs;

  ModelReport report;
  report.model_name = model_name;
  report.arch_name = architecture_.name();
  report.memory = plan.memory;
  report.memory_area_mm2 = plan.memory.total_sram_area_mm2();

  for (size_t g = 0; g < gemms.size(); ++g) {
    const size_t target = plan.mapping.assignment[g];
    // The cost matrix already simulated every feasible pair; reuse that
    // result instead of re-simulating the chosen pair.  A rule-driven
    // route to an infeasible pair still surfaces the simulator's own
    // diagnostic via simulate_one.
    LayerReport layer = costs && costs->at(g, target).feasible
                            ? costs->at(g, target).report
                            : simulate_one(target, gemms[g], plan.memory);
    // A cache-hit matrix entry keeps its donor's identity (the canonical
    // key excludes identity fields); restore this layer's.
    layer.layer_name = gemms[g].name;
    layer.subarch_name = architecture_.subarch(target).name();
    layer.subarch_index = target;
    report.total_energy.merge(layer.energy);
    report.total_runtime_ns += layer.runtime_ns();
    report.layers.push_back(std::move(layer));
  }

  for (size_t i = 0; i < architecture_.subarch_count(); ++i) {
    report.subarch_area.push_back(analyze_area(i));
  }
  if (chosen != nullptr) *chosen = std::move(plan.mapping);
  return report;
}

ModelTotals Simulator::simulate_gemms_totals(
    const std::vector<workload::GemmWorkload>& gemms, const Mapper& mapper,
    Mapping* chosen, const uint64_t* gemm_keys) const {
  MappingPlan plan = plan_mapping(gemms, mapper, gemm_keys);
  const std::optional<CostMatrix>& costs = plan.costs;

  ModelTotals totals;
  totals.memory_area_mm2 = plan.memory.total_sram_area_mm2();

  // Accumulation order (GEMM order, then sub-arch-area order) matches
  // simulate_gemms_report exactly, so the floating-point totals are
  // bit-identical to the full-report path.
  for (size_t g = 0; g < gemms.size(); ++g) {
    const size_t target = plan.mapping.assignment[g];
    if (costs && costs->at(g, target).feasible) {
      const CostMatrix::Entry& entry = costs->at(g, target);
      totals.energy.merge(entry.report.energy);
      totals.runtime_ns += entry.report.runtime_ns();
      totals.macs += entry.report.macs;
    } else {
      const LayerReport layer = simulate_one(target, gemms[g], plan.memory);
      totals.energy.merge(layer.energy);
      totals.runtime_ns += layer.runtime_ns();
      totals.macs += layer.macs;
    }
  }

  for (size_t i = 0; i < architecture_.subarch_count(); ++i) {
    totals.subarch_area_mm2 += analyze_area(i).total_mm2();
  }
  if (chosen != nullptr) *chosen = std::move(plan.mapping);
  return totals;
}

BatchReport::Totals BatchReport::totals(BatchAggregate aggregate) const {
  std::vector<BatchModelSlice> slices;
  slices.reserve(models.size());
  for (const ModelResult& m : models) {
    BatchModelSlice slice;
    slice.energy_pJ = m.report.total_energy.total_pJ();
    slice.latency_ns = m.report.total_runtime_ns;
    slice.area_mm2 = m.report.total_area_mm2();
    slice.macs = m.report.total_macs();
    slice.weight = m.weight;
    slice.power_W = m.report.average_power_W();
    slice.tops = m.report.tops();
    slices.push_back(slice);
  }
  const BatchFold fold = fold_batch(aggregate, slices);
  Totals totals;
  totals.energy_pJ = fold.energy_pJ;
  totals.latency_ns = fold.latency_ns;
  totals.area_mm2 = fold.area_mm2;
  totals.macs = fold.macs;
  totals.power_W = fold.power_W;
  totals.tops = fold.tops;
  return totals;
}

BatchReport Simulator::simulate_batch(const WorkloadSet& workloads,
                                      const Mapper& mapper,
                                      const BatchOptions& options) const {
  if (workloads.empty()) {
    throw std::invalid_argument("simulate_batch needs a non-empty "
                                "WorkloadSet");
  }
  BatchReport batch;
  batch.models.resize(workloads.size());

  // One chunked parallel_for over the models (the caller participates;
  // each index is exactly an independent simulate_gemms call — per-model
  // memory sizing, per-model mapping search — writing its own slot), so
  // results are bit-identical to K separate runs whichever participant
  // picks a model up.  The architecture, the thread-safe cost-matrix
  // cache (options_.cost_cache), and the Mapper (const, thread-safe per
  // its contract) are the shared, read-only state.  On a failure no new
  // models start and the lowest failing model's diagnostic reaches the
  // caller.
  util::ThreadPool pool(
      util::ThreadPool::workers_for(options.num_threads, workloads.size()));

  // Progress milestones follow the CommonOptions contract: one mutex
  // keeps the completed count monotone, and the final model always fires
  // exactly one callback at completed == size() for any progress_every.
  const size_t progress_every =
      static_cast<size_t>(std::max(1, options.progress_every));
  std::mutex progress_mutex;
  size_t completed = 0;
  auto report_progress = [&]() {
    if (!options.on_progress) return;
    std::lock_guard<std::mutex> lock(progress_mutex);
    ++completed;
    if (completed % progress_every != 0 && completed != workloads.size()) {
      return;
    }
    options.on_progress(Progress{completed, workloads.size()});
  };

  pool.parallel_for(workloads.size(), [&](size_t i) {
    const WorkloadSet::Entry& entry = workloads.at(i);
    BatchReport::ModelResult& slot = batch.models[i];
    slot.name = entry.name;
    slot.weight = entry.weight;
    slot.report =
        simulate_gemms_report(entry.gemms, mapper, entry.name, &slot.mapping,
                              entry.gemm_fingerprints.data(),
                              options.cost_cache);
    report_progress();
  });
  return batch;
}

layout::AreaBreakdown Simulator::analyze_area(size_t subarch_index) const {
  return layout::analyze_area(architecture_.subarch(subarch_index),
                              options_.area);
}

}  // namespace simphony::core
