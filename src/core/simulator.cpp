#include "core/simulator.h"

#include <stdexcept>

#include "workload/gemm.h"

namespace simphony::core {

Simulator::Simulator(arch::Architecture architecture,
                     SimulationOptions options)
    : architecture_(std::move(architecture)), options_(std::move(options)) {
  if (architecture_.subarch_count() == 0) {
    throw std::invalid_argument(
        "Simulator needs an architecture with >= 1 sub-architecture");
  }
}

LayerReport Simulator::simulate_one(
    size_t subarch_index, const workload::GemmWorkload& gemm,
    const memory::MemoryHierarchy& memory) const {
  const arch::SubArchitecture& subarch =
      architecture_.subarch(subarch_index);

  LayerReport report;
  report.layer_name = gemm.name;
  report.subarch_name = subarch.name();
  report.subarch_index = subarch_index;
  report.macs = static_cast<double>(gemm.macs());

  report.dataflow =
      dataflow::map_gemm(subarch, gemm, memory.glb.bandwidth_GBps);
  report.link = arch::analyze_link_budget(subarch, gemm.input_bits);
  report.traffic =
      memory::analyze_traffic(subarch, gemm, report.dataflow, memory);
  report.energy = energy::compute_energy(
      subarch, gemm, report.dataflow, report.link,
      options_.energy.include_data_movement ? &report.traffic : nullptr,
      options_.energy);
  return report;
}

LayerReport Simulator::simulate_gemm(size_t subarch_index,
                                     const workload::GemmWorkload& gemm) const {
  const arch::SubArchitecture& subarch =
      architecture_.subarch(subarch_index);
  const memory::MemoryHierarchy memory = memory::build_memory_hierarchy(
      {&subarch}, {gemm}, options_.memory);
  return simulate_one(subarch_index, gemm, memory);
}

ModelReport Simulator::simulate_model(const workload::Model& model,
                                      const MappingConfig& mapping) const {
  return simulate_gemms(workload::extract_gemms(model), mapping, model.name);
}

ModelReport Simulator::simulate_gemms(
    const std::vector<workload::GemmWorkload>& gemms,
    const MappingConfig& mapping, const std::string& model_name) const {
  const auto problems = mapping.validate(architecture_);
  if (!problems.empty()) {
    throw std::invalid_argument("invalid mapping config: " + problems[0]);
  }

  std::vector<const arch::SubArchitecture*> subarch_ptrs;
  for (size_t i = 0; i < architecture_.subarch_count(); ++i) {
    subarch_ptrs.push_back(&architecture_.subarch(i));
  }
  const memory::MemoryHierarchy memory =
      memory::build_memory_hierarchy(subarch_ptrs, gemms, options_.memory);

  ModelReport report;
  report.model_name = model_name;
  report.arch_name = architecture_.name();
  report.memory = memory;
  report.memory_area_mm2 = memory.total_sram_area_mm2();

  for (const auto& gemm : gemms) {
    const size_t target = mapping.resolve(gemm);
    LayerReport layer = simulate_one(target, gemm, memory);
    report.total_energy.merge(layer.energy);
    report.total_runtime_ns += layer.runtime_ns();
    report.layers.push_back(std::move(layer));
  }

  for (size_t i = 0; i < architecture_.subarch_count(); ++i) {
    report.subarch_area.push_back(analyze_area(i));
  }
  return report;
}

layout::AreaBreakdown Simulator::analyze_area(size_t subarch_index) const {
  return layout::analyze_area(architecture_.subarch(subarch_index),
                              options_.area);
}

}  // namespace simphony::core
