#include "core/simulator.h"

#include <optional>
#include <stdexcept>

#include "workload/gemm.h"

namespace simphony::core {

Simulator::Simulator(arch::Architecture architecture,
                     SimulationOptions options)
    : architecture_(std::move(architecture)), options_(std::move(options)) {
  if (architecture_.subarch_count() == 0) {
    throw std::invalid_argument(
        "Simulator needs an architecture with >= 1 sub-architecture");
  }
}

LayerReport Simulator::simulate_one(
    size_t subarch_index, const workload::GemmWorkload& gemm,
    const memory::MemoryHierarchy& memory) const {
  const arch::SubArchitecture& subarch =
      architecture_.subarch(subarch_index);

  LayerReport report;
  report.layer_name = gemm.name;
  report.subarch_name = subarch.name();
  report.subarch_index = subarch_index;
  report.macs = static_cast<double>(gemm.macs());

  report.dataflow =
      dataflow::map_gemm(subarch, gemm, memory.glb.bandwidth_GBps);
  report.link = arch::analyze_link_budget(subarch, gemm.input_bits);
  report.traffic =
      memory::analyze_traffic(subarch, gemm, report.dataflow, memory);
  report.energy = energy::compute_energy(
      subarch, gemm, report.dataflow, report.link,
      options_.energy.include_data_movement ? &report.traffic : nullptr,
      options_.energy);
  return report;
}

LayerReport Simulator::simulate_gemm(size_t subarch_index,
                                     const workload::GemmWorkload& gemm) const {
  if (subarch_index >= architecture_.subarch_count()) {
    throw std::invalid_argument(
        "simulate_gemm: sub-arch index " + std::to_string(subarch_index) +
        " out of range (architecture '" + architecture_.name() + "' has " +
        std::to_string(architecture_.subarch_count()) +
        " sub-architecture(s))");
  }
  const arch::SubArchitecture& subarch =
      architecture_.subarch(subarch_index);
  const memory::MemoryHierarchy memory = memory::build_memory_hierarchy(
      {&subarch}, {gemm}, options_.memory);
  return simulate_one(subarch_index, gemm, memory);
}

memory::MemoryHierarchy Simulator::build_shared_memory(
    const std::vector<workload::GemmWorkload>& gemms) const {
  std::vector<const arch::SubArchitecture*> subarch_ptrs;
  for (size_t i = 0; i < architecture_.subarch_count(); ++i) {
    subarch_ptrs.push_back(&architecture_.subarch(i));
  }
  return memory::build_memory_hierarchy(subarch_ptrs, gemms,
                                        options_.memory);
}

CostMatrix Simulator::build_cost_matrix(
    const std::vector<workload::GemmWorkload>& gemms,
    const memory::MemoryHierarchy& memory) const {
  CostMatrix costs(gemms.size(), architecture_.subarch_count());
  for (size_t g = 0; g < gemms.size(); ++g) {
    for (size_t s = 0; s < architecture_.subarch_count(); ++s) {
      CostMatrix::Entry& entry = costs.at(g, s);
      try {
        entry.report = simulate_one(s, gemms[g], memory);
        entry.feasible = true;
      } catch (const std::invalid_argument& e) {
        // The simulator rejects workload/hardware mismatches (e.g. a
        // dynamic tensor product on a static mesh) with invalid_argument;
        // that is an infeasible pair the search routes around.  Anything
        // else is a genuine failure and must propagate, not silently
        // become a routing decision.
        entry.error = e.what();
      }
    }
  }
  return costs;
}

CostMatrix Simulator::build_cost_matrix(
    const std::vector<workload::GemmWorkload>& gemms) const {
  return build_cost_matrix(gemms, build_shared_memory(gemms));
}

ModelReport Simulator::simulate_model(const workload::Model& model,
                                      const MappingConfig& mapping) const {
  return simulate_gemms(workload::extract_gemms(model), mapping, model.name);
}

ModelReport Simulator::simulate_model(const workload::Model& model,
                                      const Mapper& mapper,
                                      Mapping* chosen) const {
  return simulate_gemms(workload::extract_gemms(model), mapper, model.name,
                        chosen);
}

ModelReport Simulator::simulate_gemms(
    const std::vector<workload::GemmWorkload>& gemms,
    const MappingConfig& mapping, const std::string& model_name) const {
  return simulate_gemms(gemms, RuleMapper(mapping), model_name);
}

ModelReport Simulator::simulate_gemms(
    const std::vector<workload::GemmWorkload>& gemms, const Mapper& mapper,
    const std::string& model_name, Mapping* chosen) const {
  const auto problems = mapper.validate(architecture_);
  if (!problems.empty()) {
    throw std::invalid_argument("invalid mapping config: " + problems[0]);
  }

  const memory::MemoryHierarchy memory = build_shared_memory(gemms);

  MappingProblem problem;
  problem.gemms = &gemms;
  problem.subarch_count = architecture_.subarch_count();
  std::optional<CostMatrix> costs;
  if (mapper.needs_costs()) {
    costs.emplace(build_cost_matrix(gemms, memory));
    problem.costs = &*costs;
  }

  Mapping mapping = mapper.map(problem);
  if (mapping.assignment.size() != gemms.size()) {
    throw std::logic_error(
        "mapper '" + mapper.name() + "' returned " +
        std::to_string(mapping.assignment.size()) + " assignments for " +
        std::to_string(gemms.size()) + " GEMMs");
  }
  for (size_t g = 0; g < gemms.size(); ++g) {
    if (mapping.assignment[g] >= architecture_.subarch_count()) {
      throw std::invalid_argument(
          "mapper '" + mapper.name() + "' routed GEMM '" + gemms[g].name +
          "' to sub-arch index " + std::to_string(mapping.assignment[g]) +
          " but architecture '" + architecture_.name() + "' has only " +
          std::to_string(architecture_.subarch_count()) +
          " sub-architecture(s)");
    }
  }

  ModelReport report;
  report.model_name = model_name;
  report.arch_name = architecture_.name();
  report.memory = memory;
  report.memory_area_mm2 = memory.total_sram_area_mm2();

  for (size_t g = 0; g < gemms.size(); ++g) {
    const size_t target = mapping.assignment[g];
    // The cost matrix already simulated every feasible pair; reuse that
    // result instead of re-simulating the chosen pair.  A rule-driven
    // route to an infeasible pair still surfaces the simulator's own
    // diagnostic via simulate_one.
    LayerReport layer = costs && costs->at(g, target).feasible
                            ? costs->at(g, target).report
                            : simulate_one(target, gemms[g], memory);
    report.total_energy.merge(layer.energy);
    report.total_runtime_ns += layer.runtime_ns();
    report.layers.push_back(std::move(layer));
  }

  for (size_t i = 0; i < architecture_.subarch_count(); ++i) {
    report.subarch_area.push_back(analyze_area(i));
  }
  if (chosen != nullptr) *chosen = std::move(mapping);
  return report;
}

layout::AreaBreakdown Simulator::analyze_area(size_t subarch_index) const {
  return layout::analyze_area(architecture_.subarch(subarch_index),
                              options_.area);
}

}  // namespace simphony::core
