// Persistent binary store for CostMatrixCache (docs/persistence.md).
//
// File layout (all multi-byte integers LEB128 varints unless noted):
//
//   magic "SPCC" (4 bytes, LE uint32)  |  version varint
//   record*  where record = payload_len varint | crc32(payload) varint
//                           | payload
//
// Payloads begin with a record-kind varint; unknown kinds are skipped on
// load so later versions can add record types without breaking old
// readers.  kMeta carries the entry count (diagnostics only); each
// kEntry carries one (Key, CostMatrix::Entry) pair with every numeric
// field either zigzag-varint (integers) or a raw LE 64-bit pattern
// (doubles and the two key fingerprints — fingerprints are uniformly
// random 64-bit values, which LEB128 would inflate to 10 bytes).
//
// Loading is deliberately forgiving: a CRC-failed record is skipped, a
// truncated tail keeps every record before it, and a wrong magic or
// version abandons the file and starts cold.  It never throws on damaged
// input — the cache is an accelerator, so the worst acceptable outcome
// of a bad file is a slower (cold) run, never a wrong or aborted one.
#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/mapper.h"
#include "util/binio.h"

namespace simphony::core {
namespace {

// Record kinds.  New kinds must be appended, never renumbered.
constexpr uint64_t kMetaRecord = 0;
constexpr uint64_t kEntryRecord = 1;

void append_u64_raw(std::string& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t read_u64_raw(util::ByteReader& reader) {
  const std::string_view bytes = reader.read_raw(8);
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i]))
             << (8 * i);
  }
  return value;
}

void append_string_map(std::string& out,
                       const std::map<std::string, double>& map) {
  util::append_varint(out, map.size());
  for (const auto& [key, value] : map) {
    util::append_bytes(out, key);
    util::append_f64(out, value);
  }
}

std::map<std::string, double> read_string_map(util::ByteReader& reader) {
  std::map<std::string, double> map;
  const uint64_t count = reader.read_varint();
  for (uint64_t i = 0; i < count; ++i) {
    std::string key(reader.read_bytes());
    const double value = reader.read_f64();
    map.emplace(std::move(key), value);
  }
  return map;
}

void append_entry(std::string& out, const CostMatrixCache::Key& key,
                  const CostMatrix::Entry& entry) {
  util::append_varint(out, kEntryRecord);
  append_u64_raw(out, key.subarch);
  append_u64_raw(out, key.gemm);

  util::append_varint(out, entry.feasible ? 1 : 0);
  util::append_bytes(out, entry.error);

  const LayerReport& report = entry.report;
  util::append_bytes(out, report.layer_name);
  util::append_bytes(out, report.subarch_name);
  util::append_varint(out, report.subarch_index);

  const dataflow::DataflowResult& df = report.dataflow;
  util::append_varint_signed(out, df.tiling.n_tile);
  util::append_varint_signed(out, df.tiling.d_tile);
  util::append_varint_signed(out, df.tiling.m_tile);
  util::append_varint_signed(out, df.tiling.n_blocks);
  util::append_varint_signed(out, df.tiling.d_blocks);
  util::append_varint_signed(out, df.tiling.m_blocks);
  util::append_varint_signed(out, df.range_penalty_I);
  util::append_varint_signed(out, df.base_compute_cycles);
  util::append_varint_signed(out, df.compute_cycles);
  util::append_varint_signed(out, df.reconfig_events);
  util::append_varint_signed(out, df.reconfig_cycles);
  util::append_varint_signed(out, df.load_cycles);
  util::append_varint_signed(out, df.writeout_cycles);
  util::append_varint_signed(out, df.total_cycles);
  util::append_f64(out, df.runtime_ns);
  util::append_f64(out, df.adc_rate_GHz);
  util::append_varint_signed(out, df.adc_conversions);
  util::append_varint_signed(out, df.encoder_a_symbols);
  util::append_varint_signed(out, df.encoder_b_symbols);
  util::append_f64(out, df.utilization);

  const arch::LinkBudgetReport& link = report.link;
  util::append_f64(out, link.critical_path_loss_dB);
  util::append_varint(out, link.critical_path.size());
  for (const std::string& name : link.critical_path) {
    util::append_bytes(out, name);
  }
  util::append_f64(out, link.laser_power_per_wavelength_mW);
  util::append_f64(out, link.total_laser_power_mW);
  util::append_f64(out, link.pd_sensitivity_dBm);
  util::append_f64(out, link.snr_margin_dB);
  util::append_varint_signed(out, link.input_bits);

  const memory::TrafficResult& traffic = report.traffic;
  util::append_f64(out, traffic.hbm_bytes);
  util::append_f64(out, traffic.glb_bytes);
  util::append_f64(out, traffic.lb_bytes);
  util::append_f64(out, traffic.rf_bytes);
  append_string_map(out, traffic.energy_pJ);

  append_string_map(out, report.energy.entries());

  util::append_f64(out, report.macs);
}

/// Decodes one kEntry payload (the kind varint already consumed).
/// Throws std::invalid_argument on any structural damage — the caller
/// counts that as a skipped record.
std::pair<CostMatrixCache::Key, CostMatrix::Entry> read_entry(
    util::ByteReader& reader) {
  CostMatrixCache::Key key;
  key.subarch = read_u64_raw(reader);
  key.gemm = read_u64_raw(reader);

  CostMatrix::Entry entry;
  entry.feasible = reader.read_varint() != 0;
  entry.error = std::string(reader.read_bytes());

  LayerReport& report = entry.report;
  report.layer_name = std::string(reader.read_bytes());
  report.subarch_name = std::string(reader.read_bytes());
  report.subarch_index = reader.read_varint();

  dataflow::DataflowResult& df = report.dataflow;
  df.tiling.n_tile = reader.read_varint_signed();
  df.tiling.d_tile = reader.read_varint_signed();
  df.tiling.m_tile = reader.read_varint_signed();
  df.tiling.n_blocks = reader.read_varint_signed();
  df.tiling.d_blocks = reader.read_varint_signed();
  df.tiling.m_blocks = reader.read_varint_signed();
  df.range_penalty_I = static_cast<int>(reader.read_varint_signed());
  df.base_compute_cycles = reader.read_varint_signed();
  df.compute_cycles = reader.read_varint_signed();
  df.reconfig_events = reader.read_varint_signed();
  df.reconfig_cycles = reader.read_varint_signed();
  df.load_cycles = reader.read_varint_signed();
  df.writeout_cycles = reader.read_varint_signed();
  df.total_cycles = reader.read_varint_signed();
  df.runtime_ns = reader.read_f64();
  df.adc_rate_GHz = reader.read_f64();
  df.adc_conversions = reader.read_varint_signed();
  df.encoder_a_symbols = reader.read_varint_signed();
  df.encoder_b_symbols = reader.read_varint_signed();
  df.utilization = reader.read_f64();

  arch::LinkBudgetReport& link = report.link;
  link.critical_path_loss_dB = reader.read_f64();
  const uint64_t path_length = reader.read_varint();
  link.critical_path.reserve(
      static_cast<size_t>(std::min<uint64_t>(path_length, 1024)));
  for (uint64_t i = 0; i < path_length; ++i) {
    link.critical_path.emplace_back(reader.read_bytes());
  }
  link.laser_power_per_wavelength_mW = reader.read_f64();
  link.total_laser_power_mW = reader.read_f64();
  link.pd_sensitivity_dBm = reader.read_f64();
  link.snr_margin_dB = reader.read_f64();
  link.input_bits = static_cast<int>(reader.read_varint_signed());

  memory::TrafficResult& traffic = report.traffic;
  traffic.hbm_bytes = reader.read_f64();
  traffic.glb_bytes = reader.read_f64();
  traffic.lb_bytes = reader.read_f64();
  traffic.rf_bytes = reader.read_f64();
  traffic.energy_pJ = read_string_map(reader);

  for (const auto& [category, pJ] : read_string_map(reader)) {
    report.energy.add(category, pJ);
  }

  report.macs = reader.read_f64();

  if (!reader.at_end()) {
    throw std::invalid_argument("trailing bytes after entry");
  }
  return {key, std::move(entry)};
}

}  // namespace

void CostMatrixCache::save_to(util::OutputStream& out) const {
  // Snapshot under the lock, serialize outside it: entries are
  // shared_ptr<const>, so the copies stay valid and concurrent inserts
  // are not blocked by I/O.
  std::vector<std::pair<Key, std::shared_ptr<const CostMatrix::Entry>>>
      snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.assign(entries_.begin(), entries_.end());
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) {
              return a.first.subarch != b.first.subarch
                         ? a.first.subarch < b.first.subarch
                         : a.first.gemm < b.first.gemm;
            });

  util::RecordWriter writer(out, kFileMagic, kFileVersion);
  std::string payload;
  util::append_varint(payload, kMetaRecord);
  util::append_varint(payload, snapshot.size());
  writer.write_record(payload);

  for (const auto& [key, entry] : snapshot) {
    payload.clear();
    append_entry(payload, key, *entry);
    writer.write_record(payload);
  }
  out.flush();
}

void CostMatrixCache::save(const std::string& path) const {
  util::AtomicFileOutputStream out(path);
  save_to(out);
  out.commit();
}

CostMatrixCache::LoadReport CostMatrixCache::load_from(
    util::InputStream& in) {
  LoadReport result;
  result.found = true;

  util::RecordReader reader(in);
  if (!reader.header_ok(kFileMagic) || reader.version() != kFileVersion) {
    if (reader.io_error()) {
      // The device failed before the header could even be read; this is
      // damage, not a foreign file format.
      result.truncated = true;
      result.message = "I/O error while reading cache; kept the prefix";
      return result;
    }
    result.version_mismatch = true;
    result.message = "unrecognized cache file (magic/version mismatch, "
                     "expected SPCC v" +
                     std::to_string(kFileVersion) + "); starting cold";
    return result;
  }

  std::string_view payload;
  for (;;) {
    const size_t record_offset = reader.offset();
    const util::RecordStatus status = reader.next(&payload);
    if (status == util::RecordStatus::kEnd) break;
    if (status == util::RecordStatus::kTruncated) {
      result.truncated = true;
      result.message = "cache file truncated at byte " +
                       std::to_string(record_offset) +
                       "; kept the valid prefix";
      break;
    }
    if (status == util::RecordStatus::kCorrupt) {
      ++result.skipped;
      continue;
    }
    util::ByteReader body(payload);
    try {
      const uint64_t kind = body.read_varint();
      if (kind == kEntryRecord) {
        auto [key, entry] = read_entry(body);
        insert(key, std::move(entry));
        ++result.loaded;
      }
      // kMetaRecord and unknown kinds: informational / forward compat.
    } catch (const std::invalid_argument&) {
      // CRC passed but the payload does not decode (a record written by
      // a same-version writer cannot do this; treat as damage).
      ++result.skipped;
    }
  }
  if (reader.io_error()) {
    result.truncated = true;
    if (result.message.empty()) {
      result.message = "I/O error while reading cache; kept the prefix";
    }
  }
  if (result.skipped > 0 && result.message.empty()) {
    result.message = "skipped " + std::to_string(result.skipped) +
                     " checksum-failed record(s)";
  }
  return result;
}

CostMatrixCache::LoadReport CostMatrixCache::load(const std::string& path) {
  try {
    util::FileInputStream in(path);
    return load_from(in);
  } catch (const util::IoError&) {
    LoadReport result;  // missing/unreadable file: cold start
    return result;
  }
}

}  // namespace simphony::core
