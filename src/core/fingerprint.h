// Canonical workload-side fingerprint of a GEMM (the CostMatrixCache key
// half that hashes shapes, bit widths, flags, and the weight tensor's
// *content* — the energy model is data-aware, so two layers share a cost
// entry only when their weights match bit for bit).
//
// Declared here, separately from the Simulator, so WorkloadSet::add can
// compute each model's fingerprints once per sweep instead of once per
// design point: content-hashing the weight tensors is the expensive part
// of cost-matrix assembly on the warm-cache path.  The definition lives
// in simulator.cpp next to the hardware-side half; persisted cost caches
// (docs/persistence.md) depend on the produced values never changing.
#pragma once

#include <cstdint>

#include "workload/gemm.h"

namespace simphony::core {

[[nodiscard]] uint64_t gemm_fingerprint(const workload::GemmWorkload& gemm);

}  // namespace simphony::core
