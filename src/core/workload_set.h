// Batched multi-model simulation, part 1: the workload side.
//
// The serve-many-models scenario (ROADMAP "batched multi-model
// simulation") runs K workloads against ONE design point.  Today each
// simulate_model call re-extracts the GEMMs and — in a DSE sweep — the
// caller re-materializes the architecture per model.  A WorkloadSet is
// the batch: named models with per-model weights whose GEMM lowering is
// done exactly once at add() time, so a Simulator (or the batched
// explore() overloads in core/dse.h) can reuse one constructed
// architecture, one thread pool, and one CostMatrixCache across every
// model of the batch.
//
// Entries are immutable and address-stable after add(): each stored
// Model owns the weight tensors its extracted GemmWorkloads point into,
// and lives behind a shared_ptr so growing or copying the set never
// moves it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "util/json.h"
#include "workload/gemm.h"
#include "workload/model.h"

namespace simphony::core {

// BatchAggregate, aggregate_values, and derive_batch_metrics moved to
// core/metrics.h (the unified metric layer); this include keeps every
// workload_set.h consumer compiling unchanged.

/// A batch of named models whose GEMMs are extracted once, up front.
class WorkloadSet {
 public:
  struct Entry {
    std::string name;    // unique within the set; labels per-model rows
    double weight = 1.0; // used by BatchAggregate::kWeighted
    workload::Model model;
    /// extract_gemms(model), computed once at add(); the weight tensors
    /// point into `model` above (same lifetime as this Entry).
    std::vector<workload::GemmWorkload> gemms;
    /// core::gemm_fingerprint of each GEMM (same order as `gemms`),
    /// computed once at add() so a sweep sharing a CostMatrixCache never
    /// re-hashes the weight tensors per design point.  Valid only for the
    /// GEMMs exactly as stored — a caller that overrides bit widths
    /// per-point must re-fingerprint.
    std::vector<uint64_t> gemm_fingerprints;
  };

  /// Moves `model` into the set and extracts its GEMMs.  An empty `name`
  /// defaults to model.name.  Throws std::invalid_argument on a duplicate
  /// name (names key per-model result rows) or a non-finite / non-positive
  /// weight.  Returns the stored entry.
  const Entry& add(workload::Model model, std::string name = "",
                   double weight = 1.0);

  [[nodiscard]] size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Entry i in add() order; throws std::out_of_range.
  [[nodiscard]] const Entry& at(size_t index) const;

  /// Sum of per-model GEMM counts (total per-design-point work items).
  [[nodiscard]] size_t total_gemms() const;

  /// Per-model weights in add() order (the kWeighted coefficients).
  [[nodiscard]] std::vector<double> weights() const;

 private:
  // shared_ptr gives address stability under vector growth and makes
  // copies of the set cheap (entries are immutable once added).
  std::vector<std::shared_ptr<const Entry>> entries_;
};

/// One model request parsed from a WorkloadSet JSON document — the
/// `--models file.json` format:
///
///   {"models": [{"spec": "vgg8", "name": "cnn", "weight": 2.0},
///               {"spec": "gemm:256x64x256"}]}
///
/// (a bare array is also accepted).  "spec" is required and must be a
/// workload::model_from_spec string; "name" defaults to the built model's
/// name; "weight" defaults to 1 and must be a positive finite number.
struct WorkloadSpec {
  std::string spec;
  std::string name;     // empty = use the built model's name
  double weight = 1.0;
};

/// Parses the request list without building the (potentially large)
/// models, so callers can rewrite layer bit-widths or apply conversions
/// before WorkloadSet::add.  Throws std::invalid_argument on structural
/// problems (missing "spec", bad weight, wrong types).
[[nodiscard]] std::vector<WorkloadSpec> workload_specs_from_json(
    const util::Json& j);

/// Builds the full set: workload_specs_from_json + model_from_spec + add,
/// in document order.
[[nodiscard]] WorkloadSet workload_set_from_json(const util::Json& j);

}  // namespace simphony::core
