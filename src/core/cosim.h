// Functional hardware/software co-simulation (paper Fig. 1: "seamless
// integration with model training framework for hardware/software
// co-simulation").
//
// Evaluates a GEMM *through* the analog signal chain of a sub-architecture
// instead of just costing it:
//   1. operands quantized to the architecture's DAC resolutions,
//   2. per-readout analog noise injected at the receiver's effective
//      resolution (ENOB from the link-budget + noise analysis),
//   3. partial sums accumulated per d-tile window (temporal integration),
//   4. outputs quantized by the ADC.
// The result carries the numerical error against the fp32 reference, so
// model-level accuracy studies can calibrate bitwidths and laser power
// without a training framework in the loop.
#pragma once

#include <cstdint>

#include "arch/hierarchy.h"
#include "workload/tensor.h"

namespace simphony::core {

struct CosimOptions {
  /// Override the receiver ENOB; <= 0 derives it from the sub-arch noise
  /// analysis at the link-budget laser power.
  double enob_override_bits = -1.0;
  /// Disable analog noise entirely (quantization-only ablation).
  bool inject_noise = true;
  uint64_t seed = 0xC051Full;
};

struct CosimResult {
  workload::Tensor output;       // (N x M), the analog result
  workload::Tensor reference;    // (N x M), fp32 reference
  double rmse = 0.0;             // vs reference, absolute
  double max_abs_err = 0.0;
  double output_snr_dB = 0.0;    // signal power over error power
  double enob_bits = 0.0;        // receiver resolution used
};

/// Runs A (N x D) * B (D x M) through the analog model of `subarch`.
/// Throws std::invalid_argument on shape mismatch.
[[nodiscard]] CosimResult cosim_gemm(const arch::SubArchitecture& subarch,
                                     const workload::Tensor& a,
                                     const workload::Tensor& b,
                                     const CosimOptions& options = {});

}  // namespace simphony::core
