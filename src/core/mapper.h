// Cost-driven layer-to-sub-architecture mapping search (paper §III-C1,
// §IV-B4 heterogeneous computing).
//
// The paper's headline heterogeneous results come from running each layer
// on the sub-architecture that suits it.  This subsystem turns the fixed
// first-match rule list of MappingConfig into a searched decision: a
// Mapper consumes a MappingProblem (the extracted GEMMs plus a simulated
// per-(GEMM, sub-arch) CostMatrix) and produces a Mapping — one sub-arch
// index per GEMM plus the predicted totals of that assignment.
//
// Strategies:
//   * RuleMapper       — wraps a MappingConfig; exactly today's fixed
//                        routing (no costs consulted).
//   * GreedyMapper     — per-layer argmin of the per-layer objective.
//                        Globally optimal for additive objectives
//                        (latency, energy); a heuristic for EDP.
//   * BeamMapper       — width-k beam over the layer order, tracking
//                        prefix (energy, latency) sums.  Equivalent to
//                        exhaustive search whenever k >= S^(n-1) for S
//                        sub-arches and n GEMMs; parallelized on
//                        util::ThreadPool with results bit-identical for
//                        any thread count.
//   * ExhaustiveMapper — full S^n enumeration; the oracle the beam is
//                        tested against (small problems only).
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/mapping.h"
#include "core/report.h"
#include "workload/gemm.h"

namespace simphony::core {

/// What "best" means when scalarizing a candidate assignment.
enum class MappingObjective {
  kLatency,  // minimize total runtime
  kEnergy,   // minimize total energy
  kEdp,      // minimize energy-delay product of the whole model
};

[[nodiscard]] const char* to_string(MappingObjective objective);

/// Parses "latency" | "energy" | "edp"; nullopt on anything else.
[[nodiscard]] std::optional<MappingObjective> parse_objective(
    const std::string& text);

/// Scalarizes totals under an objective (lower is better).
[[nodiscard]] double objective_value(MappingObjective objective,
                                     double energy_pJ, double latency_ns);

/// Simulated cost of every (GEMM, sub-arch) pair, built once per mapping
/// search so strategies never re-simulate a pair.  Entries keep the full
/// LayerReport: after the search the Simulator assembles the ModelReport
/// from the matrix instead of simulating the chosen pairs again.
class CostMatrix {
 public:
  struct Entry {
    /// False when the sub-arch cannot run the GEMM at all (e.g. a
    /// dynamic tensor product on a weight-stationary mesh).
    bool feasible = false;
    std::string error;   // the simulator's diagnostic when infeasible
    LayerReport report;  // valid only when feasible
  };

  CostMatrix(size_t num_gemms, size_t num_subarchs);

  [[nodiscard]] size_t num_gemms() const { return num_gemms_; }
  [[nodiscard]] size_t num_subarchs() const { return num_subarchs_; }

  [[nodiscard]] const Entry& at(size_t gemm, size_t subarch) const;
  [[nodiscard]] Entry& at(size_t gemm, size_t subarch);

  /// Per-layer objective value of one pair; +infinity when infeasible.
  [[nodiscard]] double cost(size_t gemm, size_t subarch,
                            MappingObjective objective) const;

  /// Sub-arch indices able to run a GEMM, ascending.
  [[nodiscard]] std::vector<size_t> feasible_subarchs(size_t gemm) const;

 private:
  size_t num_gemms_;
  size_t num_subarchs_;
  std::vector<Entry> entries_;  // row-major: [gemm * num_subarchs_ + subarch]
};

/// Everything a Mapper sees.  `costs` is null iff the strategy declared
/// needs_costs() == false (the Simulator skips building the matrix then);
/// `subarch_count` is the valid assignment range — it duplicates
/// costs->num_subarchs() when a matrix is present, but is the only
/// architecture information a costless strategy gets.
struct MappingProblem {
  const std::vector<workload::GemmWorkload>* gemms = nullptr;
  const CostMatrix* costs = nullptr;
  size_t subarch_count = 0;
};

/// A chosen assignment plus its predicted totals.  Predictions come from
/// the cost matrix; a costless strategy (RuleMapper) leaves them at 0.
struct Mapping {
  std::vector<size_t> assignment;  // one sub-arch index per GEMM
  double predicted_energy_pJ = 0.0;
  double predicted_latency_ns = 0.0;
  /// objective_value() of the predicted totals (0 for costless strategies).
  double predicted_cost = 0.0;
};

/// Strategy interface.  map() must be const and thread-safe: the DSE
/// engine shares one Mapper across concurrent design-point evaluations.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Strategy name for reports and tables ("rules", "greedy", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether map() consults MappingProblem::costs; the Simulator only
  /// builds the cost matrix when it will be used.
  [[nodiscard]] virtual bool needs_costs() const { return true; }

  /// Pre-flight check against a concrete architecture (e.g. rule targets
  /// in range).  Non-empty problems abort the simulation with a clear
  /// error before anything is costed.
  [[nodiscard]] virtual std::vector<std::string> validate(
      const arch::Architecture& architecture) const;

  [[nodiscard]] virtual Mapping map(const MappingProblem& problem) const = 0;
};

/// Fixed first-match rule routing — today's MappingConfig behavior,
/// bit-identical to the legacy simulate_model(model, config) path.
class RuleMapper final : public Mapper {
 public:
  explicit RuleMapper(MappingConfig config);

  [[nodiscard]] std::string name() const override { return "rules"; }
  [[nodiscard]] bool needs_costs() const override { return false; }
  [[nodiscard]] std::vector<std::string> validate(
      const arch::Architecture& architecture) const override;
  [[nodiscard]] Mapping map(const MappingProblem& problem) const override;

  [[nodiscard]] const MappingConfig& config() const { return config_; }

 private:
  MappingConfig config_;
};

/// Per-layer argmin of the per-layer objective.  Optimal for additive
/// objectives (latency, energy: the model total is the sum of per-layer
/// terms); for EDP — (sum E) * (sum L), non-additive — it is a fast
/// heuristic that BeamMapper can beat.  Ties go to the lowest sub-arch
/// index.
class GreedyMapper final : public Mapper {
 public:
  explicit GreedyMapper(
      MappingObjective objective = MappingObjective::kEdp);

  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] MappingObjective objective() const { return objective_; }
  [[nodiscard]] Mapping map(const MappingProblem& problem) const override;

 private:
  MappingObjective objective_;
};

/// Width-k beam search over the layer order.  Each beam state is an
/// assignment prefix with its (energy, latency) sums; states are scored by
/// objective_value() of the prefix and pruned to the best k with a
/// deterministic tie-break (score, then lexicographic assignment).
///
/// Exhaustive-equivalence guarantee: with S sub-arches and n GEMMs the
/// number of distinct prefixes after layer i is S^i, so any width
/// k >= S^(n-1) never prunes and the result equals full enumeration.
///
/// Candidate expansion is parallelized on util::ThreadPool with indexed
/// writes followed by a total-order sort, so the chosen mapping is
/// bit-identical for any num_threads (0 = one worker per hardware thread,
/// 1 = serial; serial is the default so nesting inside DSE workers does
/// not oversubscribe).
class BeamMapper final : public Mapper {
 public:
  explicit BeamMapper(size_t width = 8,
                      MappingObjective objective = MappingObjective::kEdp,
                      int num_threads = 1);

  [[nodiscard]] std::string name() const override { return "beam"; }
  [[nodiscard]] size_t width() const { return width_; }
  [[nodiscard]] MappingObjective objective() const { return objective_; }
  [[nodiscard]] Mapping map(const MappingProblem& problem) const override;

 private:
  size_t width_;
  MappingObjective objective_;
  int num_threads_;
};

/// Full S^n enumeration — exact but exponential; the oracle used to test
/// BeamMapper's equivalence guarantee.  Refuses problems with more than
/// ~2^20 candidate assignments.
class ExhaustiveMapper final : public Mapper {
 public:
  explicit ExhaustiveMapper(
      MappingObjective objective = MappingObjective::kEdp);

  [[nodiscard]] std::string name() const override { return "exhaustive"; }
  [[nodiscard]] Mapping map(const MappingProblem& problem) const override;

 private:
  MappingObjective objective_;
};

}  // namespace simphony::core
