// Cost-driven layer-to-sub-architecture mapping search (paper §III-C1,
// §IV-B4 heterogeneous computing).
//
// The paper's headline heterogeneous results come from running each layer
// on the sub-architecture that suits it.  This subsystem turns the fixed
// first-match rule list of MappingConfig into a searched decision: a
// Mapper consumes a MappingProblem (the extracted GEMMs plus a simulated
// per-(GEMM, sub-arch) CostMatrix) and produces a Mapping — one sub-arch
// index per GEMM plus the predicted totals of that assignment.
//
// Strategies:
//   * RuleMapper       — wraps a MappingConfig; exactly today's fixed
//                        routing (no costs consulted).
//   * GreedyMapper     — per-layer argmin of the per-layer objective.
//                        Globally optimal for additive objectives
//                        (latency, energy); a heuristic for EDP.
//   * BeamMapper       — width-k beam over the layer order, tracking
//                        prefix (energy, latency) sums.  Equivalent to
//                        exhaustive search whenever k >= S^(n-1) for S
//                        sub-arches and n GEMMs; parallelized on
//                        util::ThreadPool with results bit-identical for
//                        any thread count.
//   * BranchBoundMapper — depth-first assignment search with admissible
//                        lower bounds and a greedy incumbent.  Exact (equal
//                        to ExhaustiveMapper bit for bit on every
//                        objective) while pruning most of the S^n tree.
//   * ExhaustiveMapper — full S^n enumeration; the oracle the beam and
//                        branch-and-bound are tested against (small
//                        problems only).
//
// CostMatrixCache memoizes per-(sub-arch, GEMM) LayerReports across cost
// matrices, so DSE points sharing a sub-arch parameterization — or
// repeated searches over the same architecture — never re-simulate a pair.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mapping.h"
#include "core/metrics.h"
#include "core/report.h"
#include "util/binio.h"
#include "workload/gemm.h"

namespace simphony::core {

// MappingObjective, parse_objective, and objective_value moved to
// core/metrics.h (the unified metric layer).  Every search strategy below
// now scores through an ObjectiveSpec; the legacy MappingObjective
// constructors remain and build the canned specs, which score through the
// original objective_value() switch bit for bit.

/// Simulated cost of every (GEMM, sub-arch) pair, built once per mapping
/// search so strategies never re-simulate a pair.  Entries keep the full
/// LayerReport: after the search the Simulator assembles the ModelReport
/// from the matrix instead of simulating the chosen pairs again.
///
/// Storage is structure-of-arrays: the search inner loops (Greedy's
/// per-layer argmin, Beam's candidate expansion, branch-and-bound's DFS)
/// read only (feasible, energy, latency) per pair, so those live in
/// contiguous parallel arrays — energy_row()/latency_row()/feasible_row()
/// hand a strategy one cache-dense row per layer.  The full Entry (with
/// its LayerReport and infeasibility diagnostic) sits behind a shared_ptr
/// per pair, reachable through the at() view; cache hits alias the
/// CostMatrixCache's own entry instead of deep-copying it, which is why
/// a cached entry's report keeps the *donor's* identity fields — the
/// Simulator rewrites layer/sub-arch identity at report-assembly time.
class CostMatrix {
 public:
  struct Entry {
    /// False when the sub-arch cannot run the GEMM at all (e.g. a
    /// dynamic tensor product on a weight-stationary mesh).
    bool feasible = false;
    std::string error;   // the simulator's diagnostic when infeasible
    LayerReport report;  // valid only when feasible
  };

  CostMatrix(size_t num_gemms, size_t num_subarchs);

  [[nodiscard]] size_t num_gemms() const { return num_gemms_; }
  [[nodiscard]] size_t num_subarchs() const { return num_subarchs_; }

  /// Full-entry view of one pair (an unset pair reads as a default —
  /// infeasible — Entry).  Identity fields of a cache-hit entry are the
  /// donor's; see the class comment.
  [[nodiscard]] const Entry& at(size_t gemm, size_t subarch) const;

  /// Stores a locally produced entry.
  void set(size_t gemm, size_t subarch, Entry entry);

  /// Stores a shared entry (a CostMatrixCache hit) without copying it.
  void set(size_t gemm, size_t subarch, std::shared_ptr<const Entry> entry);

  /// Per-layer objective value of one pair; +infinity when infeasible.
  [[nodiscard]] double cost(size_t gemm, size_t subarch,
                            MappingObjective objective) const;

  /// Sub-arch indices able to run a GEMM, ascending.
  [[nodiscard]] std::vector<size_t> feasible_subarchs(size_t gemm) const;

  /// SoA rows of one GEMM, indexed by sub-arch (num_subarchs() wide).
  /// Energy/latency hold +infinity for infeasible pairs.
  [[nodiscard]] const std::uint8_t* feasible_row(size_t gemm) const {
    return feasible_.data() + gemm * num_subarchs_;
  }
  [[nodiscard]] const double* energy_row(size_t gemm) const {
    return energy_pJ_.data() + gemm * num_subarchs_;
  }
  [[nodiscard]] const double* latency_row(size_t gemm) const {
    return latency_ns_.data() + gemm * num_subarchs_;
  }

 private:
  void set_soa(size_t index, const Entry& entry);

  size_t num_gemms_;
  size_t num_subarchs_;
  // Row-major [gemm * num_subarchs_ + subarch] throughout.
  std::vector<std::shared_ptr<const Entry>> entries_;
  std::vector<std::uint8_t> feasible_;
  std::vector<double> energy_pJ_;
  std::vector<double> latency_ns_;
};

/// Cross-point memoization of per-(sub-arch, GEMM) cost-matrix entries.
///
/// A key is a canonical fingerprint pair: one hash over everything the
/// per-pair simulation reads on the hardware side (PTC template structure,
/// materialized groups, ArchParams, device library identity, energy
/// options, and the shared memory hierarchy) and one over the workload
/// side (GEMM shape, batch, bit widths, dynamic/sparsity flags, and the
/// weight tensor's *content* — the energy model is data-aware).  Layer
/// name and sub-arch index are deliberately excluded: identical layers on
/// identical hardware share one entry, and the Simulator rewrites the
/// identity fields on every hit.  Only feasible entries are stored:
/// infeasibility diagnostics embed the layer's own name, which the
/// canonical key cannot distinguish (and rejecting an infeasible pair is
/// cheap to redo).
///
/// Thread-safe: find/insert take an internal mutex, so one cache can be
/// shared by every worker of a DSE sweep (DseOptions::cost_cache) and
/// across explore() calls.  Insertion is first-writer-wins; since a given
/// key is always produced by the same instruction sequence, every writer
/// carries a bit-identical entry and cached results equal uncached ones
/// exactly.  Keys are compared by their two 64-bit fingerprints only; a
/// false hit needs a simultaneous collision of both, which is negligible
/// at any realistic sweep size.
class CostMatrixCache {
 public:
  struct Key {
    uint64_t subarch = 0;  // hardware-side fingerprint
    uint64_t gemm = 0;     // workload-side fingerprint
    [[nodiscard]] bool operator==(const Key&) const = default;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// hits / (hits + misses); 0 when nothing was looked up.
    [[nodiscard]] double hit_rate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };

  /// File-format identity of the persistent store (docs/persistence.md):
  /// magic "SPCC" read little-endian, format version bumped on any
  /// incompatible layout change.
  static constexpr uint32_t kFileMagic = 0x43435053u;  // "SPCC"
  static constexpr uint32_t kFileVersion = 1;

  /// What load() recovered — and what it had to give up.  Loading never
  /// throws on damaged input: corrupt records are skipped, a truncated
  /// tail keeps the valid prefix, and a wrong magic/version starts cold;
  /// `message` carries the human-readable warning for each degradation.
  struct LoadReport {
    size_t loaded = 0;    // entries inserted into the cache
    size_t skipped = 0;   // records dropped (CRC mismatch / undecodable)
    bool found = false;   // a file existed and was opened
    bool version_mismatch = false;  // wrong magic or version: started cold
    bool truncated = false;         // stream ended inside a record
    std::string message;            // empty when the load was clean

    [[nodiscard]] bool clean() const {
      return skipped == 0 && !version_mismatch && !truncated;
    }
  };

  /// Serializes every entry to `out` in the versioned, CRC-framed binary
  /// format.  Deterministic: entries are written sorted by key, so
  /// save -> load -> save reproduces the file byte for byte.
  void save_to(util::OutputStream& out) const;

  /// Atomic save: writes `path + ".tmp"`, fsyncs, renames onto `path`.
  /// Throws util::IoError on I/O failure (never leaves a torn `path`).
  void save(const std::string& path) const;

  /// Merges entries from `in` (first writer wins against existing
  /// entries; hit/miss counters untouched).  See LoadReport for the
  /// degradation contract.
  LoadReport load_from(util::InputStream& in);

  /// load_from() over a file; a missing file is a cold start
  /// (found == false), not an error.
  LoadReport load(const std::string& path);

  /// Cached entry for `key`, or nullptr (counted as hit/miss).
  [[nodiscard]] std::shared_ptr<const CostMatrix::Entry> find(
      const Key& key) const;

  /// Stores `entry` under `key` (first writer wins) and returns the
  /// stored entry.
  std::shared_ptr<const CostMatrix::Entry> insert(const Key& key,
                                                  CostMatrix::Entry entry);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] size_t size() const;
  void clear();  // drops entries and resets the counters

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return static_cast<size_t>(key.subarch ^
                                 (key.gemm * 0x9e3779b97f4a7c15ULL));
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const CostMatrix::Entry>, KeyHash>
      entries_;
  mutable Stats stats_;
};

/// Everything a Mapper sees.  `costs` is null iff the strategy declared
/// needs_costs() == false (the Simulator skips building the matrix then);
/// `subarch_count` is the valid assignment range — it duplicates
/// costs->num_subarchs() when a matrix is present, but is the only
/// architecture information a costless strategy gets.
struct MappingProblem {
  const std::vector<workload::GemmWorkload>* gemms = nullptr;
  const CostMatrix* costs = nullptr;
  size_t subarch_count = 0;
};

/// A chosen assignment plus its predicted totals.  Predictions come from
/// the cost matrix; a costless strategy (RuleMapper) leaves them at 0.
struct Mapping {
  std::vector<size_t> assignment;  // one sub-arch index per GEMM
  double predicted_energy_pJ = 0.0;
  double predicted_latency_ns = 0.0;
  /// objective_value() of the predicted totals (0 for costless strategies).
  double predicted_cost = 0.0;
};

/// Strategy interface.  map() must be const and thread-safe: the DSE
/// engine shares one Mapper across concurrent design-point evaluations.
class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Strategy name for reports and tables ("rules", "greedy", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether map() consults MappingProblem::costs; the Simulator only
  /// builds the cost matrix when it will be used.
  [[nodiscard]] virtual bool needs_costs() const { return true; }

  /// Pre-flight check against a concrete architecture (e.g. rule targets
  /// in range).  Non-empty problems abort the simulation with a clear
  /// error before anything is costed.
  [[nodiscard]] virtual std::vector<std::string> validate(
      const arch::Architecture& architecture) const;

  [[nodiscard]] virtual Mapping map(const MappingProblem& problem) const = 0;
};

/// Fixed first-match rule routing — today's MappingConfig behavior,
/// bit-identical to the legacy simulate_model(model, config) path.
class RuleMapper final : public Mapper {
 public:
  explicit RuleMapper(MappingConfig config);

  [[nodiscard]] std::string name() const override { return "rules"; }
  [[nodiscard]] bool needs_costs() const override { return false; }
  [[nodiscard]] std::vector<std::string> validate(
      const arch::Architecture& architecture) const override;
  [[nodiscard]] Mapping map(const MappingProblem& problem) const override;

  [[nodiscard]] const MappingConfig& config() const { return config_; }

 private:
  MappingConfig config_;
};

/// Per-layer argmin of the per-layer objective.  Optimal for additive
/// objectives (latency, energy: the model total is the sum of per-layer
/// terms); for EDP — (sum E) * (sum L), non-additive — it is a fast
/// heuristic that BeamMapper can beat.  Ties go to the lowest sub-arch
/// index.
class GreedyMapper final : public Mapper {
 public:
  explicit GreedyMapper(
      MappingObjective objective = MappingObjective::kEdp);
  /// General-spec search; throws std::invalid_argument unless
  /// objective.mapper_compatible().
  explicit GreedyMapper(ObjectiveSpec objective);

  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] const ObjectiveSpec& objective() const { return objective_; }
  [[nodiscard]] Mapping map(const MappingProblem& problem) const override;

 private:
  ObjectiveSpec objective_;
};

/// Width-k beam search over the layer order.  Each beam state is an
/// assignment prefix with its (energy, latency) sums; states are scored by
/// objective_value() of the prefix and pruned to the best k with a
/// deterministic tie-break (score, then lexicographic assignment).
///
/// Exhaustive-equivalence guarantee: with S sub-arches and n GEMMs the
/// number of distinct prefixes after layer i is S^i, so any width
/// k >= S^(n-1) never prunes and the result equals full enumeration.
///
/// Candidate expansion is parallelized on util::ThreadPool with indexed
/// writes followed by a total-order sort, so the chosen mapping is
/// bit-identical for any num_threads (0 = one worker per hardware thread,
/// 1 = serial; serial is the default so nesting inside DSE workers does
/// not oversubscribe).
class BeamMapper final : public Mapper {
 public:
  explicit BeamMapper(size_t width = 8,
                      MappingObjective objective = MappingObjective::kEdp,
                      int num_threads = 1);
  /// General-spec search; throws std::invalid_argument unless
  /// objective.mapper_compatible().
  BeamMapper(size_t width, ObjectiveSpec objective, int num_threads = 1);

  [[nodiscard]] std::string name() const override { return "beam"; }
  [[nodiscard]] size_t width() const { return width_; }
  [[nodiscard]] const ObjectiveSpec& objective() const { return objective_; }
  [[nodiscard]] Mapping map(const MappingProblem& problem) const override;

 private:
  size_t width_;
  ObjectiveSpec objective_;
  int num_threads_;
};

/// Exact depth-first branch-and-bound over the layer order.
///
/// The search walks assignment prefixes in lexicographic order, tracking
/// prefix (energy, latency) sums, and prunes a subtree when an admissible
/// lower bound on any completion exceeds the incumbent:
///   * latency / energy (additive): prefix sum + the suffix sum of each
///     remaining layer's feasible minimum — exact, so with the greedy
///     incumbent (optimal for additive objectives) only tie subtrees
///     survive;
///   * EDP: (E_prefix + sum min E) * (L_prefix + sum min L) — the
///     component-wise-minima bound.  EDP is monotone in both totals and
///     every completion satisfies both component inequalities, so the
///     bound never exceeds a reachable score (admissible).
/// Pruning is strict (bound > incumbent only, with the bound deflated by
/// an ulp-scale margin so floating-point reassociation in the suffix
/// sums can never make it inadmissible) and the incumbent is replaced on
/// (score, lexicographic assignment), so the result equals
/// ExhaustiveMapper bit for bit on every objective — including the
/// lexicographically-smallest-optimum tie-break and the exact
/// floating-point summation order — without the S^n enumeration limit.
///
/// The incumbent is seeded from GreedyMapper's assignment before the
/// search starts.  With num_threads != 1 the tree is split into the
/// lex-ordered feasible prefixes of a small fixed depth, subtrees are
/// searched on a util::ThreadPool against a shared atomic bound, and the
/// per-subtree winners are reduced in prefix order — the chosen mapping is
/// bit-identical for any thread count (0 = one worker per hardware
/// thread; the default 1 stays serial so nesting inside DSE workers does
/// not oversubscribe).
class BranchBoundMapper final : public Mapper {
 public:
  /// Search effort counters (map_counted): subtree roots the DFS expanded
  /// vs. pruned against the bound, plus the full S^n leaf count for scale.
  struct Stats {
    uint64_t visited = 0;
    uint64_t pruned = 0;
    double total_assignments = 0.0;
  };

  explicit BranchBoundMapper(
      MappingObjective objective = MappingObjective::kEdp,
      int num_threads = 1);
  /// General-spec search; throws std::invalid_argument unless
  /// objective.mapper_compatible().  Bounds stay admissible because every
  /// mapper-compatible metric is monotone nondecreasing in the prefix
  /// (energy, latency) totals — see ObjectiveSpec::mapper_compatible.
  explicit BranchBoundMapper(ObjectiveSpec objective, int num_threads = 1);

  [[nodiscard]] std::string name() const override { return "bnb"; }
  [[nodiscard]] const ObjectiveSpec& objective() const { return objective_; }
  [[nodiscard]] Mapping map(const MappingProblem& problem) const override;

  /// map() variant that also reports how much of the tree was explored.
  [[nodiscard]] Mapping map_counted(const MappingProblem& problem,
                                    Stats* stats) const;

 private:
  ObjectiveSpec objective_;
  int num_threads_;
};

/// Full S^n enumeration — exact but exponential; the oracle used to test
/// BeamMapper's equivalence guarantee.  Refuses problems with more than
/// ~2^20 candidate assignments.
class ExhaustiveMapper final : public Mapper {
 public:
  explicit ExhaustiveMapper(
      MappingObjective objective = MappingObjective::kEdp);
  /// General-spec search; throws std::invalid_argument unless
  /// objective.mapper_compatible().
  explicit ExhaustiveMapper(ObjectiveSpec objective);

  [[nodiscard]] std::string name() const override { return "exhaustive"; }
  [[nodiscard]] Mapping map(const MappingProblem& problem) const override;

 private:
  ObjectiveSpec objective_;
};

}  // namespace simphony::core
