#include "core/strategy.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace simphony::core {

const char* to_string(FidelityLevel fidelity) {
  return fidelity == FidelityLevel::kLow ? "low" : "full";
}

namespace {

/// Batch positions sorted ascending by one objective — non-finite values
/// last (they can never be frontier points), canonical index as the tie
/// break so the order is deterministic for any thread count.
std::vector<size_t> leaderboard(const std::vector<DsePoint>& points,
                                double (*metric)(const DsePoint&)) {
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double ma = metric(points[a]);
    const double mb = metric(points[b]);
    const bool fa = std::isfinite(ma);
    const bool fb = std::isfinite(mb);
    if (fa != fb) return fa;
    if (fa && ma != mb) return ma < mb;
    return points[a].index < points[b].index;
  });
  return order;
}

double metric_energy(const DsePoint& p) { return p.energy_pJ; }
double metric_latency(const DsePoint& p) { return p.latency_ns; }
double metric_area(const DsePoint& p) { return p.area_mm2; }
double metric_edap(const DsePoint& p) { return p.edap(); }

/// Batch positions ranked by an objective spec: finite spec values first
/// (ascending under the spec's own ordering — value() for scalar specs,
/// the component-wise comparison for lexicographic ones), canonical index
/// as the deterministic tie break.
std::vector<size_t> spec_leaderboard(const std::vector<DsePoint>& points,
                                     const ObjectiveSpec& spec) {
  std::vector<MetricVector> vectors;
  vectors.reserve(points.size());
  for (const DsePoint& p : points) vectors.push_back(p.metrics());
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const bool fa = std::isfinite(spec.value(vectors[a]));
    const bool fb = std::isfinite(spec.value(vectors[b]));
    if (fa != fb) return fa;
    if (fa) {
      if (spec.less(vectors[a], vectors[b])) return true;
      if (spec.less(vectors[b], vectors[a])) return false;
    }
    return points[a].index < points[b].index;
  });
  return order;
}

}  // namespace

// ------------------------------------------------------- OneShotStrategy

void OneShotStrategy::begin(Context context) {
  context_ = std::move(context);
  proposed_ = false;
  results_.clear();
}

std::vector<ExploreStrategy::Candidate> OneShotStrategy::next_batch() {
  if (proposed_) return {};
  proposed_ = true;
  std::vector<Candidate> batch;
  batch.reserve(context_.slice.size());
  for (const Candidate& candidate : context_.slice) {
    if (context_.skipped(candidate.index)) continue;
    batch.push_back(candidate);
  }
  if (batch.empty()) return {};
  rung_stats_.push_back(
      RungStats{0, FidelityLevel::kFull, batch.size(), 0});
  return batch;
}

void OneShotStrategy::consume(const std::vector<DsePoint>& evaluated,
                              size_t fresh_evaluations) {
  rung_stats_.back().evaluated = fresh_evaluations;
  results_.insert(results_.end(), evaluated.begin(), evaluated.end());
}

std::vector<DsePoint> OneShotStrategy::finish() {
  return std::move(results_);
}

// --------------------------------------------- SuccessiveHalvingStrategy

SuccessiveHalvingStrategy::SuccessiveHalvingStrategy(int eta, int rungs)
    : eta_(eta), rungs_(rungs) {
  if (eta < 2) {
    throw std::invalid_argument("successive halving needs eta >= 2, got " +
                                std::to_string(eta));
  }
  if (rungs < 1) {
    throw std::invalid_argument("successive halving needs rungs >= 1, got " +
                                std::to_string(rungs));
  }
}

SuccessiveHalvingStrategy::SuccessiveHalvingStrategy(int eta, int rungs,
                                                     ObjectiveSpec objective)
    : SuccessiveHalvingStrategy(eta, rungs) {
  objective_ = std::move(objective);
}

size_t SuccessiveHalvingStrategy::rung_survivors(size_t n, int eta,
                                                 int rung) {
  // Iterated ceiling division: ceil(ceil(n/eta)/eta) == ceil(n/eta^2), so
  // the loop computes ceil(n / eta^rung) without overflowing eta^rung.
  size_t k = n;
  for (int r = 0; r < rung && k > 1; ++r) {
    k = (k + static_cast<size_t>(eta) - 1) / static_cast<size_t>(eta);
  }
  return n == 0 ? 0 : std::max<size_t>(1, k);
}

void SuccessiveHalvingStrategy::begin(Context context) {
  context_ = std::move(context);
  rung_ = 0;
  awaiting_consume_ = false;
  done_ = false;
  results_.clear();
  survivors_.resize(context_.slice.size());
  std::iota(survivors_.begin(), survivors_.end(), size_t{0});
}

std::vector<ExploreStrategy::Candidate>
SuccessiveHalvingStrategy::next_batch() {
  if (done_ || awaiting_consume_ || survivors_.empty()) {
    done_ = done_ || survivors_.empty();
    return {};
  }
  const bool final_rung = rung_ == rungs_ - 1;
  const FidelityLevel fidelity =
      final_rung ? FidelityLevel::kFull : FidelityLevel::kLow;
  std::vector<Candidate> batch;
  batch.reserve(survivors_.size());
  for (size_t s : survivors_) {
    Candidate candidate = context_.slice[s];
    // Resumed indices already hold a full-fidelity result; every other
    // rung re-ranks them at kLow so survivor selection matches the
    // uninterrupted run exactly.
    if (final_rung && context_.skipped(candidate.index)) continue;
    candidate.fidelity = fidelity;
    batch.push_back(std::move(candidate));
  }
  rung_stats_.push_back(RungStats{rung_, fidelity, batch.size(), 0});
  if (batch.empty()) {  // every survivor was resumed
    done_ = true;
    return {};
  }
  awaiting_consume_ = true;
  return batch;
}

void SuccessiveHalvingStrategy::consume(
    const std::vector<DsePoint>& evaluated, size_t fresh_evaluations) {
  awaiting_consume_ = false;
  rung_stats_.back().evaluated = fresh_evaluations;
  if (rung_ == rungs_ - 1) {
    results_ = evaluated;
    for (DsePoint& point : results_) point.rung = rung_;
    done_ = true;
    return;
  }
  // Multi-objective rank: a point's rank is its best position across the
  // per-objective leaderboards, so the cheap tier's argmin of every
  // objective — and with it each frontier extreme — always survives.
  std::vector<size_t> rank(evaluated.size(),
                           std::numeric_limits<size_t>::max());
  for (double (*metric)(const DsePoint&) :
       {&metric_energy, &metric_latency, &metric_area, &metric_edap}) {
    const std::vector<size_t> order = leaderboard(evaluated, metric);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      rank[order[pos]] = std::min(rank[order[pos]], pos);
    }
  }
  // A non-canned objective adds its own board, so the spec's argmin is
  // guaranteed a full-fidelity evaluation; the canned specs add nothing,
  // keeping legacy survivor sets (and documents) byte-identical.
  if (!objective_.canned_objective()) {
    const std::vector<size_t> order = spec_leaderboard(evaluated, objective_);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      rank[order[pos]] = std::min(rank[order[pos]], pos);
    }
  }
  std::vector<size_t> order(evaluated.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (rank[a] != rank[b]) return rank[a] < rank[b];
    return evaluated[a].index < evaluated[b].index;
  });
  const size_t keep =
      rung_survivors(context_.slice.size(), eta_, rung_ + 1);
  order.resize(std::min(keep, order.size()));
  // Batch order is survivors_ order on non-final rungs, so a batch
  // position maps straight back to its slice position.
  std::vector<size_t> next;
  next.reserve(order.size());
  for (size_t pos : order) next.push_back(survivors_[pos]);
  std::sort(next.begin(), next.end());
  survivors_ = std::move(next);
  ++rung_;
}

std::vector<DsePoint> SuccessiveHalvingStrategy::finish() {
  return std::move(results_);
}

// ----------------------------------------------- FrontierRefineStrategy

FrontierRefineStrategy::FrontierRefineStrategy(DseSpace space,
                                               int refine_rounds)
    : space_(std::move(space)), refine_rounds_(refine_rounds) {
  if (refine_rounds < 1) {
    throw std::invalid_argument(
        "frontier refinement needs refine_rounds >= 1, got " +
        std::to_string(refine_rounds));
  }
}

FrontierRefineStrategy::FrontierRefineStrategy(DseSpace space,
                                               int refine_rounds,
                                               ObjectiveSpec objective)
    : FrontierRefineStrategy(std::move(space), refine_rounds) {
  objective_ = std::move(objective);
}

void FrontierRefineStrategy::begin(Context context) {
  context_ = std::move(context);
  round_ = 0;
  awaiting_consume_ = false;
  done_ = false;
  next_index_ = context_.total_points;
  results_.clear();
  seen_.clear();
  for (const Candidate& candidate : context_.slice) {
    seen_.insert(candidate.params);
  }
}

std::vector<ExploreStrategy::Candidate>
FrontierRefineStrategy::neighbors_of_frontier() {
  // The frontier over everything evaluated so far — marked over the
  // objective's pareto_axes, so e.g. a p99 objective refines around the
  // tail-latency frontier too — in canonical index order so proposals
  // (and their assigned indices) are deterministic.
  std::vector<DsePoint> pool = results_;
  mark_pareto_frontier(pool, pareto_axes(objective_));
  std::sort(pool.begin(), pool.end(),
            [](const DsePoint& a, const DsePoint& b) {
              return a.index < b.index;
            });

  std::vector<Candidate> batch;
  auto propose = [&](arch::ArchParams params) {
    if (!seen_.insert(params).second) return;
    batch.push_back(
        Candidate{next_index_++, std::move(params), FidelityLevel::kFull});
  };
  // Step one swept axis to its adjacent value list entries, reproducing
  // the axis coupling of grid enumeration (a core_sizes step drives
  // width too unless core_widths is swept; an input_bits step sets
  // input and weight bits together).
  const bool coupled_width = space_.core_widths.empty();
  auto perturb = [&](const std::vector<int>& axis, int current,
                     const std::function<void(arch::ArchParams&, int)>& set,
                     const arch::ArchParams& base) {
    if (axis.size() < 2) return;
    const auto it = std::find(axis.begin(), axis.end(), current);
    if (it == axis.end()) return;
    const size_t pos = static_cast<size_t>(it - axis.begin());
    for (int delta : {-1, +1}) {
      const long long neighbor = static_cast<long long>(pos) + delta;
      if (neighbor < 0 ||
          neighbor >= static_cast<long long>(axis.size())) {
        continue;
      }
      arch::ArchParams next = base;
      set(next, axis[static_cast<size_t>(neighbor)]);
      propose(std::move(next));
    }
  };
  for (const DsePoint& point : pool) {
    if (!point.pareto) continue;
    const arch::ArchParams& p = point.params;
    perturb(space_.tiles, p.tiles,
            [](arch::ArchParams& q, int v) { q.tiles = v; }, p);
    perturb(space_.cores_per_tile, p.cores_per_tile,
            [](arch::ArchParams& q, int v) { q.cores_per_tile = v; }, p);
    perturb(space_.core_sizes, p.core_height,
            [coupled_width](arch::ArchParams& q, int v) {
              q.core_height = v;
              if (coupled_width) q.core_width = v;
            },
            p);
    perturb(space_.core_widths, p.core_width,
            [](arch::ArchParams& q, int v) { q.core_width = v; }, p);
    perturb(space_.wavelengths, p.wavelengths,
            [](arch::ArchParams& q, int v) { q.wavelengths = v; }, p);
    perturb(space_.input_bits, p.input_bits,
            [](arch::ArchParams& q, int v) {
              q.input_bits = v;
              q.weight_bits = v;
            },
            p);
    perturb(space_.output_bits, p.output_bits,
            [](arch::ArchParams& q, int v) { q.output_bits = v; }, p);
  }
  return batch;
}

std::vector<ExploreStrategy::Candidate>
FrontierRefineStrategy::next_batch() {
  if (done_ || awaiting_consume_) return {};
  std::vector<Candidate> batch;
  if (round_ == 0) {
    batch.reserve(context_.slice.size());
    for (const Candidate& candidate : context_.slice) {
      if (context_.skipped(candidate.index)) continue;
      batch.push_back(candidate);
    }
  } else if (round_ <= refine_rounds_) {
    batch = neighbors_of_frontier();
  }
  if (batch.empty()) {
    done_ = true;
    return {};
  }
  rung_stats_.push_back(
      RungStats{round_, FidelityLevel::kFull, batch.size(), 0});
  awaiting_consume_ = true;
  return batch;
}

void FrontierRefineStrategy::consume(const std::vector<DsePoint>& evaluated,
                                     size_t fresh_evaluations) {
  awaiting_consume_ = false;
  rung_stats_.back().evaluated = fresh_evaluations;
  for (DsePoint point : evaluated) {
    point.rung = round_;
    results_.push_back(std::move(point));
  }
  ++round_;
  if (round_ > refine_rounds_) done_ = true;
}

std::vector<DsePoint> FrontierRefineStrategy::finish() {
  return std::move(results_);
}

// --------------------------------------------------- InterleavedStrategy

InterleavedStrategy::InterleavedStrategy(
    std::vector<ExploreStrategy*> children)
    : children_(std::move(children)) {
  if (children_.empty()) {
    throw std::invalid_argument(
        "interleaved strategy needs at least one child");
  }
}

void InterleavedStrategy::begin(Context context) {
  cursor_ = 0;
  proposer_ = 0;
  awaiting_consume_ = false;
  for (ExploreStrategy* child : children_) child->begin(context);
}

std::vector<ExploreStrategy::Candidate> InterleavedStrategy::next_batch() {
  if (awaiting_consume_) return {};
  for (size_t attempt = 0; attempt < children_.size(); ++attempt) {
    const size_t child = (cursor_ + attempt) % children_.size();
    std::vector<Candidate> batch = children_[child]->next_batch();
    if (batch.empty()) continue;
    proposer_ = child;
    cursor_ = (child + 1) % children_.size();
    awaiting_consume_ = true;
    return batch;
  }
  return {};
}

void InterleavedStrategy::consume(const std::vector<DsePoint>& evaluated,
                                  size_t fresh_evaluations) {
  awaiting_consume_ = false;
  children_[proposer_]->consume(evaluated, fresh_evaluations);
}

std::vector<DsePoint> InterleavedStrategy::finish() {
  std::vector<DsePoint> merged;
  std::unordered_set<size_t> taken;
  for (ExploreStrategy* child : children_) {
    for (DsePoint& point : child->finish()) {
      if (!taken.insert(point.index).second) continue;
      merged.push_back(std::move(point));
    }
  }
  return merged;
}

}  // namespace simphony::core
