#include "layout/area.h"

#include "util/units.h"

namespace simphony::layout {

double AreaBreakdown::total_mm2() const {
  double total = 0.0;
  for (const auto& [_, v] : mm2) total += v;
  return total;
}

double AreaBreakdown::get(const std::string& category) const {
  auto it = mm2.find(category);
  return it == mm2.end() ? 0.0 : it->second;
}

AreaBreakdown analyze_area(const arch::SubArchitecture& subarch,
                           const AreaOptions& options) {
  const arch::PtcTemplate& t = subarch.ptc();
  AreaBreakdown out;

  // Node unit area: floorplan bounding box (aware) or footprint sum.
  double node_unit_um2 = 0.0;
  if (t.node.instances().empty() == false) {
    out.node_floorplan = floorplan_signal_flow(t.node, subarch.library(),
                                               options.floorplan);
    node_unit_um2 = options.layout_aware ? out.node_floorplan.area_um2()
                                         : out.node_floorplan.naive_sum_um2;
  }

  for (const auto& g : subarch.groups()) {
    if (g.count == 0) continue;
    const arch::ArchInstance& spec = *g.spec;
    if (spec.role == arch::Role::kSource && !t.include_source_in_area) {
      continue;  // off-chip co-packaged light source
    }
    if (spec.role == arch::Role::kCoupling) continue;  // facet couplers
    if (spec.name == t.node_instance) {
      out.mm2[spec.category] +=
          util::um2_to_mm2(node_unit_um2 * static_cast<double>(g.count)) *
          t.core_routing_overhead;
      continue;
    }
    if (spec.role == arch::Role::kNodeInternal) {
      continue;  // covered by the node floorplan
    }
    out.mm2[spec.category] +=
        util::um2_to_mm2(g.unit_area_um2 * static_cast<double>(g.count));
  }

  for (const auto& [category, mm2] : t.extra_area_mm2) {
    out.mm2[category] += mm2;
  }
  return out;
}

}  // namespace simphony::layout
