// SVG rendering of floorplans — the visual counterpart of paper Fig. 6,
// and a stepping stone to "interface with PIC placement tools".
#pragma once

#include <string>

#include "layout/floorplan.h"

namespace simphony::layout {

struct SvgOptions {
  double scale = 4.0;        // px per um
  double margin_um = 5.0;
  bool label_instances = true;
};

/// Renders a floorplan as a standalone SVG document.  Devices are colored
/// by device name hash; the chip bounding box is drawn around them.
[[nodiscard]] std::string to_svg(const FloorplanResult& floorplan,
                                 const SvgOptions& options = {});

}  // namespace simphony::layout
