#include "layout/floorplan.h"

#include <algorithm>
#include <stdexcept>

namespace simphony::layout {

FloorplanResult floorplan_signal_flow(const arch::Netlist& netlist,
                                      const devlib::DeviceLibrary& lib,
                                      const FloorplanOptions& options) {
  const arch::Dag dag = arch::Dag::from_netlist(netlist, lib);
  const std::vector<int> levels = dag.levels();
  int max_level = 0;
  for (int l : levels) max_level = std::max(max_level, l);

  FloorplanResult result;
  std::vector<std::vector<size_t>> by_level(
      static_cast<size_t>(max_level) + 1);
  for (size_t i = 0; i < netlist.instances().size(); ++i) {
    by_level[static_cast<size_t>(levels[i])].push_back(i);
  }

  double y = 0.0;
  for (size_t level = 0; level < by_level.size(); ++level) {
    double x = 0.0;
    double row_height = 0.0;
    for (size_t k = 0; k < by_level[level].size(); ++k) {
      const arch::Instance& inst = netlist.instances()[by_level[level][k]];
      const devlib::DeviceParams& dev = lib.get(inst.device);
      if (k > 0) x += options.device_spacing_um;
      PlacedInstance placed;
      placed.name = inst.name;
      placed.device = inst.device;
      placed.x_um = x;
      placed.y_um = y;
      placed.width_um = dev.footprint.width_um;
      placed.height_um = dev.footprint.height_um;
      placed.level = static_cast<int>(level);
      result.placements.push_back(placed);
      x += dev.footprint.width_um;
      row_height = std::max(row_height, dev.footprint.height_um);
      result.naive_sum_um2 += dev.area_um2();
    }
    result.width_um = std::max(result.width_um, x);
    y += row_height;
    if (level + 1 < by_level.size()) y += options.row_spacing_um;
  }
  result.height_um = y;
  return result;
}

FloorplanResult floorplan_bounding_box(const arch::Netlist& netlist,
                                       const devlib::DeviceLibrary& lib,
                                       double width_um, double height_um) {
  if (width_um <= 0 || height_um <= 0) {
    throw std::invalid_argument("bounding box must be positive");
  }
  FloorplanResult result = floorplan_signal_flow(netlist, lib);
  if (result.naive_sum_um2 > width_um * height_um) {
    throw std::invalid_argument(
        "bounding box smaller than the sum of device footprints");
  }
  result.width_um = width_um;
  result.height_um = height_um;
  return result;
}

}  // namespace simphony::layout
