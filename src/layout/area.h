// Layout-aware chip area analysis (paper §III-C6, Figs. 7a/8a/10a).
//
// Per instance group: count x device footprint, except the replicated node
// building block, whose unit area is the signal-flow floorplan estimate
// (layout-aware) or the naive footprint sum (layout-unaware ablation).
// Off-chip sources (laser) are excluded unless the template opts in
// (LT's "Laser & Comb" bar); memory macro area is added by the caller.
#pragma once

#include <map>
#include <string>

#include "arch/hierarchy.h"
#include "layout/floorplan.h"

namespace simphony::layout {

struct AreaOptions {
  bool layout_aware = true;
  FloorplanOptions floorplan;
};

struct AreaBreakdown {
  /// Category -> mm^2.
  std::map<std::string, double> mm2;

  /// The floorplan of one node (valid when the template has a node).
  FloorplanResult node_floorplan;

  [[nodiscard]] double total_mm2() const;
  [[nodiscard]] double get(const std::string& category) const;
};

/// Computes the area breakdown of one sub-architecture.
[[nodiscard]] AreaBreakdown analyze_area(const arch::SubArchitecture& subarch,
                                         const AreaOptions& options = {});

}  // namespace simphony::layout
