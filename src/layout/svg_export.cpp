#include "layout/svg_export.h"

#include <functional>
#include <sstream>

namespace simphony::layout {

namespace {

/// Deterministic pastel color per device type.
std::string device_color(const std::string& device) {
  const size_t h = std::hash<std::string>{}(device);
  const int r = 120 + static_cast<int>(h % 110);
  const int g = 120 + static_cast<int>((h / 110) % 110);
  const int b = 120 + static_cast<int>((h / 12100) % 110);
  std::ostringstream os;
  os << "rgb(" << r << ',' << g << ',' << b << ')';
  return os.str();
}

}  // namespace

std::string to_svg(const FloorplanResult& floorplan,
                   const SvgOptions& options) {
  const double s = options.scale;
  const double m = options.margin_um;
  const double width_px = (floorplan.width_um + 2 * m) * s;
  const double height_px = (floorplan.height_um + 2 * m) * s;

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px
     << "\" height=\"" << height_px << "\" viewBox=\"0 0 " << width_px << ' '
     << height_px << "\">\n";
  // Chip outline.
  os << "  <rect x=\"" << m * s << "\" y=\"" << m * s << "\" width=\""
     << floorplan.width_um * s << "\" height=\"" << floorplan.height_um * s
     << "\" fill=\"none\" stroke=\"black\" stroke-width=\"1.5\"/>\n";
  for (const auto& p : floorplan.placements) {
    os << "  <rect x=\"" << (p.x_um + m) * s << "\" y=\"" << (p.y_um + m) * s
       << "\" width=\"" << p.width_um * s << "\" height=\""
       << p.height_um * s << "\" fill=\"" << device_color(p.device)
       << "\" stroke=\"#333\" stroke-width=\"0.5\">\n"
       << "    <title>" << p.name << " (" << p.device << ", level "
       << p.level << ")</title>\n  </rect>\n";
    if (options.label_instances) {
      os << "  <text x=\"" << (p.x_um + m + 0.5) * s << "\" y=\""
         << (p.y_um + m + p.height_um / 2.0) * s << "\" font-size=\""
         << 2.5 * s << "\" font-family=\"monospace\">" << p.name
         << "</text>\n";
    }
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace simphony::layout
