// Chip-level floorplanning — the architecture-scale counterpart of the
// node floorplan (paper Fig. 6 shows the node; §III-C6 notes the approach
// "can be potentially extended to interface with PIC placement tools").
//
// Hierarchical assembly mirroring the signal flow:
//   core  = encoder column (MZM A per row) | H x W node grid | readout
//           column (TIA / integrator / ADC per row)
//   tile  = C cores abutted horizontally + B-encoder strip on top
//   chip  = R tiles stacked vertically + comb/coupler strip on the left
// Spacing between nodes/blocks follows the same bend-radius-driven rules
// as the node floorplanner.
#pragma once

#include <string>
#include <vector>

#include "arch/hierarchy.h"
#include "layout/floorplan.h"

namespace simphony::layout {

struct ChipFloorplanOptions {
  FloorplanOptions node;          // node-internal floorplan rules
  double node_pitch_margin_um = 25.0;  // routing channel between node sites
  double block_spacing_um = 50.0;      // between cores / tiles / strips
};

/// A placed macro block on the chip.
struct PlacedBlock {
  std::string name;     // e.g. "tile0.core1.nodes", "tile0.encoderA"
  std::string kind;     // "nodes", "encoderA", "encoderB", "readout", "comb"
  double x_um = 0.0;
  double y_um = 0.0;
  double width_um = 0.0;
  double height_um = 0.0;
};

struct ChipFloorplan {
  double width_um = 0.0;
  double height_um = 0.0;
  std::vector<PlacedBlock> blocks;

  [[nodiscard]] double area_mm2() const {
    return width_um * height_um * 1e-6;
  }
  /// Sum of placed block areas (utilization = blocks / bbox).
  [[nodiscard]] double placed_area_mm2() const;
  [[nodiscard]] double utilization() const;
};

/// Assembles the chip plan for one sub-architecture.
[[nodiscard]] ChipFloorplan chip_floorplan(
    const arch::SubArchitecture& subarch,
    const ChipFloorplanOptions& options = {});

/// Renders the chip plan as SVG (block outlines + labels).
[[nodiscard]] std::string chip_to_svg(const ChipFloorplan& chip,
                                      double scale = 0.05);

}  // namespace simphony::layout
