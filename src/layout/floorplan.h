// Signal-flow-aware row-based floorplanning (paper §III-C6, Fig. 6).
//
// "Unlike previous methods that simply sum all device footprints,
// SimPhony-Sim ... automatically generates a signal-flow-aware floorplan.
// The floorplan follows the device's topological order from the netlist to
// adhere to the minimum bending rule in PIC placement, accounting for
// user-defined device/node spacing."
//
// Implementation: instances are grouped by topological level of the
// weighted DAG; each level forms one placement row (devices side by side
// with `device_spacing`); consecutive rows are separated by `row_spacing`
// (two waveguide bend radii) so the optical signal flows monotonically
// down the rows with minimum bends.  Chip width is the widest row; height
// is the sum of row heights plus spacing.
#pragma once

#include <string>
#include <vector>

#include "arch/graph.h"
#include "arch/netlist.h"
#include "devlib/library.h"

namespace simphony::layout {

struct FloorplanOptions {
  double device_spacing_um = 3.0;  // lateral gap between devices in a row
  double row_spacing_um = 25.0;    // vertical routing channel (~2 bends)
};

struct PlacedInstance {
  std::string name;
  std::string device;
  double x_um = 0.0;
  double y_um = 0.0;
  double width_um = 0.0;
  double height_um = 0.0;
  int level = 0;
};

struct FloorplanResult {
  double width_um = 0.0;
  double height_um = 0.0;
  std::vector<PlacedInstance> placements;

  /// Bounding-box chip area (the layout-aware estimate).
  [[nodiscard]] double area_um2() const { return width_um * height_um; }

  /// Naive sum of device footprints (the layout-unaware under-estimate
  /// used by prior methods).
  double naive_sum_um2 = 0.0;
};

/// Floorplans a netlist; throws std::invalid_argument on cyclic netlists.
[[nodiscard]] FloorplanResult floorplan_signal_flow(
    const arch::Netlist& netlist, const devlib::DeviceLibrary& lib,
    const FloorplanOptions& options = {});

/// A user-supplied bounding box (paper: "either takes in a user-defined
/// bounding box or automatically generates a floorplan").
[[nodiscard]] FloorplanResult floorplan_bounding_box(
    const arch::Netlist& netlist, const devlib::DeviceLibrary& lib,
    double width_um, double height_um);

}  // namespace simphony::layout
