#include "layout/chip_floorplan.h"

#include <algorithm>
#include <sstream>

namespace simphony::layout {

double ChipFloorplan::placed_area_mm2() const {
  double sum = 0.0;
  for (const auto& b : blocks) sum += b.width_um * b.height_um;
  return sum * 1e-6;
}

double ChipFloorplan::utilization() const {
  const double bbox = area_mm2();
  return bbox > 0 ? placed_area_mm2() / bbox : 0.0;
}

ChipFloorplan chip_floorplan(const arch::SubArchitecture& subarch,
                             const ChipFloorplanOptions& options) {
  const arch::ArchParams& p = subarch.params();
  const arch::PtcTemplate& t = subarch.ptc();
  const devlib::DeviceLibrary& lib = subarch.library();

  // Node site: node floorplan bbox plus the routing margin.
  const FloorplanResult node_fp =
      floorplan_signal_flow(t.node, lib, options.node);
  const double site_w = node_fp.width_um + options.node_pitch_margin_um;
  const double site_h = node_fp.height_um + options.node_pitch_margin_um;

  // Column widths from the devices that sit per row.
  auto device_width = [&](const char* name, double fallback) {
    return lib.has(name) ? lib.get(name).footprint.width_um : fallback;
  };
  const double enc_w = device_width("mzm", 25.0) +
                       device_width("dac", 70.0) +
                       options.node.device_spacing_um * 2.0;
  double readout_w = options.node.device_spacing_um;
  for (const char* dev : {"tia", "integrator", "adc"}) {
    if (t.has_instance(dev)) {
      readout_w += lib.get(dev).footprint.width_um +
                   options.node.device_spacing_um;
    }
  }

  const double core_w = enc_w + p.core_width * site_w + readout_w;
  const double core_h = p.core_height * site_h;
  // B-encoder strip across the top of each tile (one encoder per column
  // per core) — height of one encoder row.
  const double strip_h = device_width("mzm", 25.0) / 2.0 +
                         options.block_spacing_um;
  const double tile_w = p.cores_per_tile * core_w +
                        (p.cores_per_tile - 1) * options.block_spacing_um;
  const double tile_h = core_h + strip_h;

  // Comb/coupler strip on the left.
  const double comb_w = lib.get("coupler").footprint.width_um +
                        options.block_spacing_um;

  ChipFloorplan chip;
  const double origin_x = comb_w;
  double y = 0.0;
  for (int r = 0; r < p.tiles; ++r) {
    const std::string tile = "tile" + std::to_string(r);
    chip.blocks.push_back({tile + ".encoderB", "encoderB", origin_x, y,
                           tile_w, strip_h - options.block_spacing_um});
    const double cores_y = y + strip_h;
    for (int c = 0; c < p.cores_per_tile; ++c) {
      const double core_x =
          origin_x + c * (core_w + options.block_spacing_um);
      const std::string core = tile + ".core" + std::to_string(c);
      chip.blocks.push_back(
          {core + ".encoderA", "encoderA", core_x, cores_y, enc_w, core_h});
      chip.blocks.push_back({core + ".nodes", "nodes", core_x + enc_w,
                             cores_y, p.core_width * site_w, core_h});
      chip.blocks.push_back({core + ".readout", "readout",
                             core_x + enc_w + p.core_width * site_w,
                             cores_y, readout_w, core_h});
    }
    y += tile_h + options.block_spacing_um;
  }
  chip.height_um = y - options.block_spacing_um;
  chip.blocks.push_back(
      {"comb", "comb", 0.0, 0.0, comb_w - options.block_spacing_um,
       chip.height_um});
  chip.width_um = origin_x + tile_w;
  return chip;
}

std::string chip_to_svg(const ChipFloorplan& chip, double scale) {
  std::ostringstream os;
  const double w = chip.width_um * scale;
  const double h = chip.height_um * scale;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w
     << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << ' ' << h
     << "\">\n";
  os << "  <rect x=\"0\" y=\"0\" width=\"" << w << "\" height=\"" << h
     << "\" fill=\"#fafafa\" stroke=\"black\"/>\n";
  auto color = [](const std::string& kind) {
    if (kind == "nodes") return "#9ecae1";
    if (kind == "encoderA") return "#a1d99b";
    if (kind == "encoderB") return "#c994c7";
    if (kind == "readout") return "#fdae6b";
    return "#cccccc";
  };
  for (const auto& b : chip.blocks) {
    os << "  <rect x=\"" << b.x_um * scale << "\" y=\"" << b.y_um * scale
       << "\" width=\"" << b.width_um * scale << "\" height=\""
       << b.height_um * scale << "\" fill=\"" << color(b.kind)
       << "\" stroke=\"#555\" stroke-width=\"0.5\"><title>" << b.name
       << "</title></rect>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace simphony::layout
