#include "arch/hierarchy.h"

#include <stdexcept>

namespace simphony::arch {

util::Env make_env(const ArchParams& p) {
  return {
      {"R", static_cast<double>(p.tiles)},
      {"C", static_cast<double>(p.cores_per_tile)},
      {"H", static_cast<double>(p.core_height)},
      {"W", static_cast<double>(p.core_width)},
      {"L", static_cast<double>(p.wavelengths)},
  };
}

SubArchitecture::SubArchitecture(PtcTemplate ptc_template, ArchParams params,
                                 const devlib::DeviceLibrary& lib)
    : SubArchitecture(
          std::make_shared<const PtcTemplate>(std::move(ptc_template)),
          params, lib) {}

SubArchitecture::SubArchitecture(
    std::shared_ptr<const PtcTemplate> ptc_template, ArchParams params,
    const devlib::DeviceLibrary& lib)
    : template_(std::move(ptc_template)), params_(params), lib_(&lib) {
  if (!template_) {
    throw std::invalid_argument("sub-architecture needs a PTC template");
  }
  if (params_.tiles <= 0 || params_.cores_per_tile <= 0 ||
      params_.core_height <= 0 || params_.core_width <= 0 ||
      params_.wavelengths <= 0 || params_.clock_GHz <= 0) {
    throw std::invalid_argument("architecture parameters must be positive");
  }
  const util::Env env = make_env(params_);
  groups_.reserve(template_->instances.size());
  for (const auto& spec : template_->instances) {
    MaterializedInstance m;
    m.spec = &spec;
    m.count = spec.count.eval_count(env);
    if (m.count < 0) {
      throw std::invalid_argument("scaling rule '" + spec.count.text() +
                                  "' for group '" + spec.name +
                                  "' evaluates to a negative count");
    }
    const devlib::DeviceParams& dev = lib.get(spec.device);
    m.unit_area_um2 = dev.area_um2();
    if (!spec.path_loss_dB.empty()) {
      m.path_loss_dB = spec.path_loss_dB.eval(env);
    } else {
      const double mult =
          spec.loss_mult.empty() ? 1.0 : spec.loss_mult.eval(env);
      m.path_loss_dB = dev.insertion_loss_dB * mult;
    }
    groups_.push_back(m);
  }
}

const MaterializedInstance& SubArchitecture::group(
    const std::string& name) const {
  for (const auto& g : groups_) {
    if (g.spec->name == name) return g;
  }
  throw std::out_of_range("sub-architecture '" + template_->name +
                          "' has no group '" + name + "'");
}

bool SubArchitecture::has_group(const std::string& name) const {
  for (const auto& g : groups_) {
    if (g.spec->name == name) return true;
  }
  return false;
}

long long SubArchitecture::count_of(const std::string& name) const {
  for (const auto& g : groups_) {
    if (g.spec->name == name) return g.count;
  }
  return 0;
}

long long SubArchitecture::node_count() const {
  return count_of(template_->node_instance);
}

long long SubArchitecture::macs_per_cycle() const {
  // Spatial (R*C*H*W nodes) x spectral (L wavelengths) parallelism.
  return static_cast<long long>(params_.tiles) * params_.cores_per_tile *
         params_.core_height * params_.core_width * params_.wavelengths;
}

size_t Architecture::add_subarch(SubArchitecture subarch) {
  subarchs_.push_back(std::move(subarch));
  return subarchs_.size() - 1;
}

const SubArchitecture& Architecture::subarch(size_t idx) const {
  if (idx >= subarchs_.size()) {
    throw std::out_of_range("sub-architecture index out of range");
  }
  return subarchs_[idx];
}

const SubArchitecture& Architecture::subarch(const std::string& name) const {
  for (const auto& s : subarchs_) {
    if (s.name() == name) return s;
  }
  throw std::out_of_range("no sub-architecture named '" + name + "'");
}

std::vector<std::string> Architecture::subarch_names() const {
  std::vector<std::string> out;
  out.reserve(subarchs_.size());
  for (const auto& s : subarchs_) out.push_back(s.name());
  return out;
}

}  // namespace simphony::arch
