#include "arch/netlist.h"

#include <stdexcept>

namespace simphony::arch {

void Netlist::add_instance(std::string name, std::string device) {
  if (has_instance(name)) {
    throw std::invalid_argument("duplicate instance '" + name +
                                "' in netlist '" + name_ + "'");
  }
  instances_.push_back({std::move(name), std::move(device)});
}

void Netlist::add_net(const std::string& src, const std::string& dst) {
  if (!has_instance(src)) {
    throw std::invalid_argument("net source '" + src + "' not in netlist '" +
                                name_ + "'");
  }
  if (!has_instance(dst)) {
    throw std::invalid_argument("net target '" + dst + "' not in netlist '" +
                                name_ + "'");
  }
  if (src == dst) {
    throw std::invalid_argument("self-loop net on '" + src + "'");
  }
  nets_.push_back({src, dst});
}

bool Netlist::has_instance(const std::string& name) const {
  return find(name).has_value();
}

std::optional<size_t> Netlist::find(const std::string& name) const {
  for (size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].name == name) return i;
  }
  return std::nullopt;
}

const devlib::DeviceParams& Netlist::device_of(
    const std::string& instance, const devlib::DeviceLibrary& lib) const {
  auto idx = find(instance);
  if (!idx) {
    throw std::out_of_range("no instance '" + instance + "' in netlist '" +
                            name_ + "'");
  }
  return lib.get(instances_[*idx].device);
}

std::vector<std::string> Netlist::validate(
    const devlib::DeviceLibrary& lib) const {
  std::vector<std::string> problems;
  for (const auto& inst : instances_) {
    if (!lib.has(inst.device)) {
      problems.push_back("instance '" + inst.name + "' references unknown "
                         "device '" + inst.device + "'");
    }
  }
  for (const auto& net : nets_) {
    if (!has_instance(net.src) || !has_instance(net.dst)) {
      problems.push_back("net " + net.src + "->" + net.dst +
                         " has dangling endpoint");
    }
  }
  return problems;
}

}  // namespace simphony::arch
