// Parametric PTC templates: node + arch-level instances + scaling rules
// (paper §III-B, Fig. 3).
//
// "Key observations of PTC design patterns inspire us to use modular circuit
// construction ... define a minimal building block denoted as node ... and
// build the circuit according to specific scaling rules."  Scaling rules are
// symbolic expressions over the architecture parameters (R tiles, C cores
// per tile, H x W dot-product units per core, L wavelengths), e.g. the
// TeMPO input encoders scale as "R*H*L" and the Clements diagonal as
// "R*C*min(H,W)".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "arch/netlist.h"
#include "arch/taxonomy.h"
#include "util/expr.h"

namespace simphony::arch {

/// Functional role of an instance group; drives energy/area accounting.
enum class Role {
  kSource,        // laser / comb lines (off-chip co-packaged: excluded
                  // from on-chip area, power from link budget)
  kCoupling,      // fiber-to-chip coupler (excluded from core area)
  kEncoderA,      // operand-A input encoder chain (DAC/MZM group A)
  kEncoderB,      // operand-B input encoder chain
  kDistribution,  // splitters / crossings / muxes
  kNodeInternal,  // devices inside the replicated node building block
  kReadout,       // PD / TIA / integrator / ADC output chain
  kWeightCell,    // weight-static programmable element (PS, MZI, MRR, PCM)
  kOther,
};

/// One arch-level instance group with its symbolic scaling rules.
struct ArchInstance {
  std::string name;      // e.g. "mzm_a"
  std::string device;    // DeviceLibrary record name
  std::string category;  // display/report category, e.g. "MZM"
  Role role = Role::kOther;

  /// Count scaling rule, e.g. "R*H*L".
  util::Expr count;

  /// Optional absolute per-traversal path loss in dB as an expression over
  /// the arch parameters (used for split trees: "3.0103*log2(C*W) + ...").
  /// When empty, the path loss is device insertion loss x loss_mult.
  util::Expr path_loss_dB;

  /// Multiplier on the device insertion loss along the critical path,
  /// e.g. "max(H,W)-1" crossings traversed in sequence.  Defaults to 1.
  util::Expr loss_mult;

  /// Whether a signal on the critical path traverses this group.  Groups
  /// that only replicate in parallel (e.g. per-row DACs) still appear once.
  bool on_optical_path = true;
};

/// A complete parametric PTC architecture template.
struct PtcTemplate {
  std::string name;

  /// Arch-level instance groups (encoders, distribution, node, readout...).
  std::vector<ArchInstance> instances;

  /// Arch-level directed connectivity between instance groups, used to build
  /// the weighted DAG for link-budget analysis (Fig. 3 bottom).
  std::vector<Net> nets;

  /// Internal netlist of the minimal building block (the *node*), used for
  /// signal-flow-aware floorplanning (Fig. 6) and node-level area.
  Netlist node;

  /// Name of the instance group that represents the replicated node.
  std::string node_instance = "node";

  /// Table-I properties (operand ranges, reconfiguration, #forwards).
  PtcTaxonomy taxonomy;

  /// Weight reprogramming latency (0 for symbol-rate dynamic PTCs;
  /// ~10 us for thermo-optic meshes; ~100 ns for PCM writes).
  double reconfig_latency_ns = 0.0;

  /// True for output-stationary dynamic tensor cores (TeMPO/LT style with
  /// temporal integration); false for weight-stationary meshes/crossbars.
  bool output_stationary = true;

  /// Whether the laser/comb source area is counted in the chip area
  /// breakdown (LT reports a "Laser & Comb" bar; TeMPO keeps it off-chip).
  bool include_source_in_area = false;

  /// Fixed extra area blocks in mm^2 (e.g. control logic under "Others").
  std::map<std::string, double> extra_area_mm2;

  /// Multiplier on the node-array area for inter-node waveguide routing
  /// channels (1.0 = dense node abutment; larger meshes need routing).
  double core_routing_overhead = 1.0;

  /// Find an instance group by name; throws std::out_of_range if absent.
  [[nodiscard]] const ArchInstance& instance(const std::string& name) const;

  [[nodiscard]] bool has_instance(const std::string& name) const;
};

}  // namespace simphony::arch
