// Prebuilt parametric PTC architecture templates (paper §III-B case
// studies + §IV workloads).
//
// Each factory returns a PtcTemplate whose scaling rules are symbolic
// expressions over the architecture parameters R (tiles), C (cores/tile),
// H x W (dot-product units per core) and L (wavelengths):
//
//   * tempo_template()       — dynamic array-style TeMPO [17] (Fig. 3a):
//        output-stationary, coherent full-range, temporal integration.
//   * lightening_transformer_template() — LT [4]: same dynamic family,
//        sized for transformer workloads, laser&comb counted on-package.
//   * clements_mzi_template() — static mesh-style Clements MZI array
//        [1][22] (Fig. 3b): SVD-based weight-stationary, thermo-optic,
//        node-U/V scaled by R*C*H*(H-1)/2, node-Sigma by R*C*min(H,W).
//   * scatter_template()     — SCATTER [14]: weight-static crossbar with
//        thermo-optic phase-shifter weight cells (data-aware power target).
//   * mrr_bank_template()    — incoherent MRR weight bank [20] (I = 2).
//   * butterfly_template()   — subspace butterfly mesh [3][10] (pos-neg).
//   * pcm_crossbar_template() — non-volatile PCM crossbar [2][27] (I = 4).
//   * wdm_link_template()     — single WDM link convolutional accelerator
//        [23]: time-wavelength interleaved weights on one waveguide,
//        dispersion-delay accumulation onto a single photodetector.
#pragma once

#include "arch/node.h"

namespace simphony::arch {

[[nodiscard]] PtcTemplate tempo_template();
[[nodiscard]] PtcTemplate lightening_transformer_template();
[[nodiscard]] PtcTemplate clements_mzi_template();
[[nodiscard]] PtcTemplate scatter_template();
[[nodiscard]] PtcTemplate mrr_bank_template();
[[nodiscard]] PtcTemplate butterfly_template();
[[nodiscard]] PtcTemplate pcm_crossbar_template();
[[nodiscard]] PtcTemplate wdm_link_template();

/// All templates, for sweep-style tests.
[[nodiscard]] std::vector<PtcTemplate> all_templates();

}  // namespace simphony::arch
