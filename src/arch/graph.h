// Weighted DAG over a netlist (paper §III-B, Fig. 2b).
//
// "A weighted directed acyclic graph (DAG) is generated based on the node
// topology.  The topology and insertion-loss-based edge weights are
// essential in link budget analysis and layout-aware area estimation."
//
// Edge weights follow the paper's convention: the weight of an edge
// (u -> v) is the insertion loss of the *incident* vertex v (optionally
// scaled by a parametric multiplier, e.g. "(CW-1)x the loss of device i4").
// The loss of a path additionally includes the loss of its first vertex.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "arch/netlist.h"

namespace simphony::arch {

/// Result of a longest-path query.
struct PathResult {
  double weight = 0.0;             // total dB along the path
  std::vector<std::string> path;   // instance names, source first
};

class Dag {
 public:
  /// Builds the DAG with per-vertex weights (the device insertion loss,
  /// possibly scaled). `vertex_weight(i)` is queried for each instance index.
  /// Throws std::invalid_argument if the netlist contains a cycle.
  static Dag from_netlist(
      const Netlist& netlist,
      const std::function<double(const Instance&)>& vertex_weight);

  /// Convenience: vertex weight = device insertion loss from `lib`.
  static Dag from_netlist(const Netlist& netlist,
                          const devlib::DeviceLibrary& lib);

  [[nodiscard]] size_t vertex_count() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }
  [[nodiscard]] double vertex_weight(size_t v) const { return weights_[v]; }

  /// Topological order (stable for ties: input order).
  [[nodiscard]] const std::vector<size_t>& topo_order() const {
    return topo_;
  }

  /// Topological depth of each vertex (sources are level 0).  Used by the
  /// signal-flow-aware floorplanner.
  [[nodiscard]] std::vector<int> levels() const;

  /// Longest (maximum total vertex weight) path from any source (in-degree
  /// 0) to any sink (out-degree 0).  This is the critical insertion-loss
  /// path of the circuit.
  [[nodiscard]] PathResult longest_path() const;

  /// Longest path constrained to start at `src` and end at `dst` (by name).
  /// Returns weight -inf (and empty path) if unreachable.
  [[nodiscard]] PathResult longest_path(const std::string& src,
                                        const std::string& dst) const;

  [[nodiscard]] const std::vector<std::vector<size_t>>& adjacency() const {
    return adj_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<double> weights_;
  std::vector<std::vector<size_t>> adj_;
  std::vector<size_t> topo_;
  std::vector<size_t> in_degree_;

  void compute_topo();
};

}  // namespace simphony::arch
