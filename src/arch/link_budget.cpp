#include "arch/link_budget.h"

#include <stdexcept>

namespace simphony::arch {

namespace {

/// Builds the arch-level netlist (instance groups as instances) so the
/// generic DAG machinery can run the longest-path query.
Netlist arch_level_netlist(const PtcTemplate& t) {
  Netlist nl(t.name + "-arch");
  for (const auto& inst : t.instances) {
    nl.add_instance(inst.name, inst.device);
  }
  for (const auto& net : t.nets) {
    nl.add_net(net.src, net.dst);
  }
  return nl;
}

}  // namespace

PathResult critical_insertion_loss_path(const SubArchitecture& subarch) {
  const PtcTemplate& t = subarch.ptc();
  const Netlist nl = arch_level_netlist(t);
  const Dag dag = Dag::from_netlist(nl, [&](const Instance& inst) {
    return subarch.group(inst.name).path_loss_dB;
  });
  return dag.longest_path();
}

LinkBudgetReport analyze_link_budget(const SubArchitecture& subarch,
                                     int input_bits_override) {
  const PathResult path = critical_insertion_loss_path(subarch);

  // Photodetector and laser properties come from the library records used
  // by the template's readout/source groups.
  const devlib::DeviceLibrary& lib = subarch.library();
  double sensitivity_dBm = -26.0;
  double wpe = 0.25;
  double er_dB = 10.0;
  for (const auto& g : subarch.groups()) {
    const devlib::DeviceParams& dev = lib.get(g.spec->device);
    if (dev.extra.count("sensitivity_dBm")) {
      sensitivity_dBm = dev.prop("sensitivity_dBm");
    }
    if (dev.extra.count("wall_plug_efficiency")) {
      wpe = dev.prop("wall_plug_efficiency");
    }
    if (g.spec->role == Role::kEncoderA && dev.extra.count("er_dB")) {
      er_dB = dev.prop("er_dB");
    }
  }

  LinkBudgetReport report;
  report.critical_path_loss_dB = path.weight;
  report.critical_path = path.path;
  report.input_bits = input_bits_override >= 0
                          ? input_bits_override
                          : subarch.params().input_bits;
  report.pd_sensitivity_dBm = sensitivity_dBm;

  devlib::LinkBudgetInputs in;
  in.critical_path_loss_dB = path.weight;
  in.pd_sensitivity_dBm = sensitivity_dBm;
  in.input_bits = report.input_bits;
  in.wall_plug_efficiency = wpe;
  in.extinction_ratio_dB = er_dB;
  report.laser_power_per_wavelength_mW = devlib::laser_power_mW(in);
  report.total_laser_power_mW = report.laser_power_per_wavelength_mW *
                                subarch.params().wavelengths;
  report.snr_margin_dB = 0.0;  // sized exactly at sensitivity
  return report;
}

}  // namespace simphony::arch
