#include "arch/description.h"

#include <map>
#include <sstream>
#include <vector>

namespace simphony::arch {

namespace {

/// Splits a line into tokens; double quotes group words; '#' ends the line.
std::vector<std::string> tokenize(std::string_view line, int lineno) {
  std::vector<std::string> tokens;
  std::string current;
  bool quoted = false;
  for (char c : line) {
    if (c == '#' && !quoted) break;
    if (c == '"') {
      quoted = !quoted;
      continue;
    }
    if (!quoted && std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (quoted) {
    throw DescriptionError("line " + std::to_string(lineno) +
                           ": unterminated quote");
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

/// Splits "key=value"; value may itself contain '=' inside expressions.
std::pair<std::string, std::string> key_value(const std::string& token,
                                              int lineno) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw DescriptionError("line " + std::to_string(lineno) +
                           ": expected key=value, got '" + token + "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

Role parse_role(const std::string& s, int lineno) {
  static const std::map<std::string, Role> kRoles = {
      {"source", Role::kSource},         {"coupling", Role::kCoupling},
      {"encoder_a", Role::kEncoderA},    {"encoder_b", Role::kEncoderB},
      {"distribution", Role::kDistribution},
      {"node", Role::kNodeInternal},     {"weight", Role::kWeightCell},
      {"readout", Role::kReadout},       {"other", Role::kOther},
  };
  auto it = kRoles.find(s);
  if (it == kRoles.end()) {
    throw DescriptionError("line " + std::to_string(lineno) +
                           ": unknown role '" + s + "'");
  }
  return it->second;
}

const char* role_name(Role role) {
  switch (role) {
    case Role::kSource: return "source";
    case Role::kCoupling: return "coupling";
    case Role::kEncoderA: return "encoder_a";
    case Role::kEncoderB: return "encoder_b";
    case Role::kDistribution: return "distribution";
    case Role::kNodeInternal: return "node";
    case Role::kWeightCell: return "weight";
    case Role::kReadout: return "readout";
    case Role::kOther: return "other";
  }
  return "other";
}

OperandSpec parse_operand(const std::string& s, int lineno) {
  const size_t comma = s.find(',');
  if (comma == std::string::npos) {
    throw DescriptionError("line " + std::to_string(lineno) +
                           ": operand spec must be range,reconfig");
  }
  const std::string range = s.substr(0, comma);
  const std::string speed = s.substr(comma + 1);
  OperandSpec spec;
  if (range == "R") {
    spec.range = OperandRange::kFullReal;
  } else if (range == "R+") {
    spec.range = OperandRange::kNonNegative;
  } else if (range == "C") {
    spec.range = OperandRange::kComplexFixed;
  } else {
    throw DescriptionError("line " + std::to_string(lineno) +
                           ": unknown operand range '" + range + "'");
  }
  if (speed == "static") {
    spec.reconfig = ReconfigSpeed::kStatic;
  } else if (speed == "dynamic") {
    spec.reconfig = ReconfigSpeed::kDynamic;
  } else {
    throw DescriptionError("line " + std::to_string(lineno) +
                           ": unknown reconfig speed '" + speed + "'");
  }
  return spec;
}

}  // namespace

PtcTemplate parse_description(std::string_view text) {
  PtcTemplate t;
  bool seen_template = false;
  std::istringstream stream{std::string(text)};
  std::string raw;
  int lineno = 0;
  while (std::getline(stream, raw)) {
    ++lineno;
    const std::vector<std::string> tok = tokenize(raw, lineno);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];
    auto need = [&](size_t n) {
      if (tok.size() < n + 1) {
        throw DescriptionError("line " + std::to_string(lineno) + ": '" +
                               cmd + "' needs " + std::to_string(n) +
                               " argument(s)");
      }
    };
    if (cmd == "template") {
      need(1);
      t.name = tok[1];
      t.node = Netlist(tok[1] + "-node");
      seen_template = true;
    } else if (!seen_template) {
      throw DescriptionError("line " + std::to_string(lineno) +
                             ": description must start with 'template'");
    } else if (cmd == "output_stationary") {
      need(1);
      t.output_stationary = tok[1] != "0" && tok[1] != "false";
    } else if (cmd == "reconfig_ns") {
      need(1);
      t.reconfig_latency_ns = std::stod(tok[1]);
    } else if (cmd == "include_source_in_area") {
      need(1);
      t.include_source_in_area = tok[1] != "0" && tok[1] != "false";
    } else if (cmd == "core_routing_overhead") {
      need(1);
      t.core_routing_overhead = std::stod(tok[1]);
    } else if (cmd == "extra_area") {
      need(2);
      t.extra_area_mm2[tok[1]] = std::stod(tok[2]);
    } else if (cmd == "node_instance") {
      need(1);
      t.node_instance = tok[1];
    } else if (cmd == "taxonomy") {
      need(3);
      for (size_t i = 1; i < tok.size(); ++i) {
        const auto [key, value] = key_value(tok[i], lineno);
        if (key == "a") {
          t.taxonomy.operand_a = parse_operand(value, lineno);
        } else if (key == "b") {
          t.taxonomy.operand_b = parse_operand(value, lineno);
        } else if (key == "method") {
          if (value == "direct") {
            t.taxonomy.method = RangeMethod::kDirect;
          } else if (value == "posneg") {
            t.taxonomy.method = RangeMethod::kPosNeg;
          } else {
            throw DescriptionError("line " + std::to_string(lineno) +
                                   ": unknown method '" + value + "'");
          }
        }
      }
    } else if (cmd == "nodedev") {
      need(2);
      t.node.add_instance(tok[1], tok[2]);
    } else if (cmd == "nodenet") {
      need(2);
      t.node.add_net(tok[1], tok[2]);
    } else if (cmd == "inst") {
      ArchInstance inst;
      bool has_count = false;
      for (size_t i = 1; i < tok.size(); ++i) {
        const auto [key, value] = key_value(tok[i], lineno);
        try {
          if (key == "name") {
            inst.name = value;
          } else if (key == "dev") {
            inst.device = value;
          } else if (key == "cat") {
            inst.category = value;
          } else if (key == "role") {
            inst.role = parse_role(value, lineno);
          } else if (key == "count") {
            inst.count = util::Expr::parse(value);
            has_count = true;
          } else if (key == "pathloss") {
            inst.path_loss_dB = util::Expr::parse(value);
          } else if (key == "lossmult") {
            inst.loss_mult = util::Expr::parse(value);
          } else if (key == "onpath") {
            inst.on_optical_path = value != "0" && value != "false";
          } else {
            throw DescriptionError("line " + std::to_string(lineno) +
                                   ": unknown inst key '" + key + "'");
          }
        } catch (const util::ExprError& e) {
          throw DescriptionError("line " + std::to_string(lineno) + ": " +
                                 e.what());
        }
      }
      if (inst.name.empty() || inst.device.empty() || !has_count) {
        throw DescriptionError("line " + std::to_string(lineno) +
                               ": inst needs name=, dev= and count=");
      }
      if (inst.category.empty()) inst.category = inst.device;
      t.instances.push_back(std::move(inst));
    } else if (cmd == "net") {
      need(2);
      t.nets.push_back({tok[1], tok[2]});
    } else {
      throw DescriptionError("line " + std::to_string(lineno) +
                             ": unknown directive '" + cmd + "'");
    }
  }
  if (!seen_template) {
    throw DescriptionError("empty description: missing 'template'");
  }
  return t;
}

std::string write_description(const PtcTemplate& t) {
  std::ostringstream os;
  auto quote = [](const std::string& s) {
    return s.find(' ') == std::string::npos ? s : '"' + s + '"';
  };
  os << "template " << t.name << "\n";
  os << "output_stationary " << (t.output_stationary ? 1 : 0) << "\n";
  os << "reconfig_ns " << t.reconfig_latency_ns << "\n";
  if (t.include_source_in_area) os << "include_source_in_area 1\n";
  if (t.core_routing_overhead != 1.0) {
    os << "core_routing_overhead " << t.core_routing_overhead << "\n";
  }
  for (const auto& [k, v] : t.extra_area_mm2) {
    os << "extra_area " << quote(k) << ' ' << v << "\n";
  }
  auto operand = [](const OperandSpec& o) {
    return to_string(o.range) + "," +
           (o.reconfig == ReconfigSpeed::kStatic ? "static" : "dynamic");
  };
  os << "taxonomy a=" << operand(t.taxonomy.operand_a)
     << " b=" << operand(t.taxonomy.operand_b) << " method="
     << (t.taxonomy.method == RangeMethod::kDirect ? "direct" : "posneg")
     << "\n";
  os << "node_instance " << t.node_instance << "\n";
  for (const auto& inst : t.node.instances()) {
    os << "nodedev " << inst.name << ' ' << inst.device << "\n";
  }
  for (const auto& net : t.node.nets()) {
    os << "nodenet " << net.src << ' ' << net.dst << "\n";
  }
  for (const auto& inst : t.instances) {
    os << "inst name=" << inst.name << " dev=" << inst.device
       << " cat=" << quote(inst.category) << " role=" << role_name(inst.role)
       << " count=" << quote(inst.count.text());
    if (!inst.path_loss_dB.empty()) {
      os << " pathloss=" << quote(inst.path_loss_dB.text());
    }
    if (!inst.loss_mult.empty()) {
      os << " lossmult=" << quote(inst.loss_mult.text());
    }
    if (!inst.on_optical_path) os << " onpath=0";
    os << "\n";
  }
  for (const auto& net : t.nets) {
    os << "net " << net.src << ' ' << net.dst << "\n";
  }
  return os.str();
}

}  // namespace simphony::arch
