#include "arch/prebuilt.h"

#include <utility>

#include "util/expr.h"

namespace simphony::arch {

namespace {

using util::Expr;

/// Shorthand: parse a scaling-rule expression.
Expr E(const char* text) { return Expr::parse(text); }

ArchInstance make_inst(std::string name, std::string device,
                       std::string category, Role role, const char* count,
                       const char* path_loss = nullptr,
                       const char* loss_mult = nullptr,
                       bool on_path = true) {
  ArchInstance inst;
  inst.name = std::move(name);
  inst.device = std::move(device);
  inst.category = std::move(category);
  inst.role = role;
  inst.count = E(count);
  if (path_loss != nullptr) inst.path_loss_dB = E(path_loss);
  if (loss_mult != nullptr) inst.loss_mult = E(loss_mult);
  inst.on_optical_path = on_path;
  return inst;
}

/// The TeMPO/LT coherent dot-product node (paper Fig. 2a / Fig. 6):
/// two trim phase sections feeding a 2x2 MMI, balanced PD and one routing
/// crossing.  This is the netlist whose floorplan reproduces the published
/// 4531.5 um^2 estimate against the 1270.5 um^2 naive footprint sum.
Netlist coherent_node() {
  Netlist node("dot-product-node");
  node.add_instance("i0", "ps");        // trim section, beam A
  node.add_instance("i1", "ps");        // trim section, beam B
  node.add_instance("i2", "mmi");       // 2x2 interference combiner
  node.add_instance("i3", "pd");        // balanced photodetector
  node.add_instance("i4", "crossing");  // exit routing crossing
  node.add_net("i0", "i2");
  node.add_net("i1", "i2");
  node.add_net("i2", "i3");
  node.add_net("i2", "i4");
  return node;
}

/// Shared skeleton of the dynamic array-style family (TeMPO / LT):
/// comb -> coupler -> split -> {MZM A row encoders, MZM B column encoders}
/// -> broadcast trees -> crossing fabric -> node (trim PS -> MMI -> PD)
/// -> TIA -> [integrator] -> ADC.
PtcTemplate dynamic_array_family(std::string name, bool with_integrator,
                                 const char* pd_device = "pd",
                                 const char* ps_device = "ps",
                                 const char* dac_device = "dac",
                                 bool with_soa = false) {
  PtcTemplate t;
  t.name = std::move(name);
  t.node = coherent_node();
  t.node_instance = "node";
  t.taxonomy = {{OperandRange::kFullReal, ReconfigSpeed::kDynamic},
                {OperandRange::kFullReal, ReconfigSpeed::kDynamic},
                RangeMethod::kDirect};
  t.reconfig_latency_ns = 0.0;  // symbol-rate EO reconfiguration
  t.output_stationary = true;

  t.instances.push_back(
      make_inst("laser", "laser", "Laser", Role::kSource, "L"));
  t.instances.push_back(
      make_inst("coupler", "coupler", "Coupler", Role::kCoupling, "L"));
  // Comb distribution to all (R*H + C*W) encoders per wavelength: ideal
  // 1->N split loss plus 0.1 dB excess per tree stage.
  t.instances.push_back(make_inst(
      "comb_split", "ybranch", "Y Branch", Role::kDistribution,
      "(R*H + C*W - 1)*L",
      "3.0103*log2(R*H + C*W) + 0.2*ceil(log2(R*H + C*W))"));
  if (with_soa) {
    // On-chip gain stage after the comb distribution (LT-scale fan-out).
    t.instances.push_back(
        make_inst("soa", "soa", "Laser", Role::kDistribution, "L"));
  }
  // Operand A (row) encoders, broadcast to the C cores x W columns of a
  // tile; operand B (column) encoders, broadcast across the R tiles.
  t.instances.push_back(make_inst("dac_a", dac_device, "DAC", Role::kEncoderA,
                                  "R*H*L", nullptr, nullptr, false));
  t.instances.push_back(
      make_inst("mzm_a", "mzm", "MZM", Role::kEncoderA, "R*H*L"));
  t.instances.push_back(
      make_inst("bcast_a", "ybranch", "Y Branch", Role::kDistribution,
                "R*H*L*(C*W - 1)",
                "3.0103*log2(C*W) + 0.2*ceil(log2(C*W))"));
  t.instances.push_back(make_inst("dac_b", dac_device, "DAC", Role::kEncoderB,
                                  "C*W*L", nullptr, nullptr, false));
  t.instances.push_back(
      make_inst("mzm_b", "mzm", "MZM", Role::kEncoderB, "C*W*L"));
  t.instances.push_back(
      make_inst("bcast_b", "ybranch", "Y Branch", Role::kDistribution,
                "C*W*L*(R*H - 1)",
                "3.0103*log2(R*H) + 0.2*ceil(log2(R*H))"));
  // Crossing fabric: a row signal crosses up to max(H,W)-1 column guides.
  t.instances.push_back(make_inst("xing", "crossing", "Crossing",
                                  Role::kDistribution, "R*C*H*W*max(H,W)",
                                  nullptr, "max(H,W) - 1"));
  // The replicated node building block (area via floorplan) and its
  // internal device groups (for power and link budget).
  t.instances.push_back(make_inst("node", "mmi", "Node", Role::kNodeInternal,
                                  "R*C*H*W", nullptr, nullptr, false));
  t.instances.push_back(make_inst("ps_node", ps_device, "PS",
                                  Role::kNodeInternal, "2*R*C*H*W"));
  t.instances.push_back(
      make_inst("mmi_node", "mmi", "MMI", Role::kNodeInternal, "R*C*H*W"));
  t.instances.push_back(
      make_inst("pd_node", pd_device, "PD", Role::kNodeInternal, "R*C*H*W"));
  // Readout chain: photocurrents of the C cores of a tile are accumulated
  // in the analog domain, so the readout scales by R*H*W.
  t.instances.push_back(
      make_inst("tia", "tia", "TIA", Role::kReadout, "R*H*W"));
  if (with_integrator) {
    t.instances.push_back(make_inst("integrator", "integrator", "Integrator",
                                    Role::kReadout, "R*H*W"));
  }
  t.instances.push_back(
      make_inst("adc", "adc", "ADC", Role::kReadout, "R*H*W"));

  // Arch-level connectivity for link-budget analysis (Fig. 3a bottom).
  t.nets.push_back({"laser", "coupler"});
  t.nets.push_back({"coupler", "comb_split"});
  if (with_soa) {
    t.nets.push_back({"comb_split", "soa"});
    t.nets.push_back({"soa", "mzm_a"});
    t.nets.push_back({"soa", "mzm_b"});
  } else {
    t.nets.push_back({"comb_split", "mzm_a"});
    t.nets.push_back({"comb_split", "mzm_b"});
  }
  t.nets.push_back({"dac_a", "mzm_a"});
  t.nets.push_back({"dac_b", "mzm_b"});
  t.nets.push_back({"mzm_a", "bcast_a"});
  t.nets.push_back({"mzm_b", "bcast_b"});
  t.nets.push_back({"bcast_a", "xing"});
  t.nets.push_back({"xing", "ps_node"});
  t.nets.push_back({"bcast_b", "ps_node"});
  t.nets.push_back({"ps_node", "mmi_node"});
  t.nets.push_back({"mmi_node", "pd_node"});
  t.nets.push_back({"pd_node", "tia"});
  if (with_integrator) {
    t.nets.push_back({"tia", "integrator"});
    t.nets.push_back({"integrator", "adc"});
  } else {
    t.nets.push_back({"tia", "adc"});
  }
  return t;
}

}  // namespace

PtcTemplate tempo_template() {
  return dynamic_array_family("tempo", /*with_integrator=*/true);
}

PtcTemplate lightening_transformer_template() {
  // LT's receiver chain uses avalanche photodetectors (higher sensitivity,
  // which keeps the comb power practical at its 72-way distribution) and
  // passively trimmed nodes (no PS hold power in its breakdown).
  PtcTemplate t = dynamic_array_family(
      "lightening-transformer", /*with_integrator=*/false, "pd_apd",
      "ps_passive", "dac_lt", /*with_soa=*/true);
  t.include_source_in_area = true;  // Fig. 8a has a "Laser & Comb" bar
  // At 12x12-node scale the slow-light sections and routing channels
  // dominate the photonic core (calibrated to LT's reported core area).
  t.core_routing_overhead = 4.0;
  // Digital control, SerDes and misc blocks reported as "Others".
  t.extra_area_mm2["Others"] = 20.05;
  return t;
}

PtcTemplate clements_mzi_template() {
  PtcTemplate t;
  t.name = "mzi-mesh";
  // Minimal building block: a single MZI (node-U / node-Sigma / node-V all
  // share the same 2x2 unit, paper case study 2).
  t.node = Netlist("mzi-node");
  t.node.add_instance("i0", "mzi");
  t.node_instance = "node_u";
  t.taxonomy = {{OperandRange::kFullReal, ReconfigSpeed::kDynamic},
                {OperandRange::kFullReal, ReconfigSpeed::kStatic},
                RangeMethod::kDirect};
  t.reconfig_latency_ns = 10'000.0;  // thermo-optic time constant ~10 us
  t.output_stationary = false;       // weight-stationary SVD mapping

  t.instances.push_back(
      make_inst("laser", "laser", "Laser", Role::kSource, "1"));
  t.instances.push_back(
      make_inst("coupler", "coupler", "Coupler", Role::kCoupling, "1"));
  t.instances.push_back(make_inst(
      "split", "ybranch", "Y Branch", Role::kDistribution, "(R*C*H - 1)",
      "3.0103*log2(R*C*H) + 0.2*ceil(log2(R*C*H))"));
  t.instances.push_back(make_inst("dac_in", "dac", "DAC", Role::kEncoderA,
                                  "R*C*H", nullptr, nullptr, false));
  t.instances.push_back(
      make_inst("mzm_in", "mzm", "MZM", Role::kEncoderA, "R*C*H"));
  // "Scaling node-U/V by R*C*H*(H-1)/2 times and the diagonal by
  // R*C*min(H,W) times, which is not representable by array-based
  // simulators" (paper §III-B case study 2).
  t.instances.push_back(make_inst("node_u", "mzi", "PS", Role::kWeightCell,
                                  "R*C*H*(H-1)/2", nullptr, "H"));
  t.instances.push_back(make_inst("node_sigma", "mzi", "PS",
                                  Role::kWeightCell, "R*C*min(H,W)"));
  t.instances.push_back(make_inst("node_v", "mzi", "PS", Role::kWeightCell,
                                  "R*C*W*(W-1)/2", nullptr, "W"));
  t.instances.push_back(
      make_inst("pd", "pd", "PD", Role::kReadout, "R*C*W"));
  t.instances.push_back(
      make_inst("tia", "tia", "TIA", Role::kReadout, "R*C*W"));
  t.instances.push_back(
      make_inst("adc", "adc", "ADC", Role::kReadout, "R*C*W"));

  t.nets.push_back({"laser", "coupler"});
  t.nets.push_back({"coupler", "split"});
  t.nets.push_back({"split", "mzm_in"});
  t.nets.push_back({"dac_in", "mzm_in"});
  t.nets.push_back({"mzm_in", "node_v"});
  t.nets.push_back({"node_v", "node_sigma"});
  t.nets.push_back({"node_sigma", "node_u"});
  t.nets.push_back({"node_u", "pd"});
  t.nets.push_back({"pd", "tia"});
  t.nets.push_back({"tia", "adc"});
  return t;
}

PtcTemplate scatter_template() {
  PtcTemplate t;
  t.name = "scatter";
  // SCATTER node: a thermo-optic weight cell with in-situ light
  // redistribution (Y-branch) and routing crossing.
  t.node = Netlist("scatter-node");
  t.node.add_instance("i0", "ps");
  t.node.add_instance("i1", "ybranch");
  t.node.add_instance("i2", "crossing");
  t.node.add_net("i0", "i1");
  t.node.add_net("i1", "i2");
  t.node_instance = "ps_w";
  t.taxonomy = {{OperandRange::kFullReal, ReconfigSpeed::kDynamic},
                {OperandRange::kFullReal, ReconfigSpeed::kStatic},
                RangeMethod::kDirect};
  // Weight blocks switch via fast in-situ light redistribution (SCATTER's
  // headline mechanism), far quicker than full thermo-optic reprogramming.
  t.reconfig_latency_ns = 100.0;
  t.output_stationary = false;

  t.instances.push_back(
      make_inst("laser", "laser", "Laser", Role::kSource, "L"));
  t.instances.push_back(
      make_inst("coupler", "coupler", "Coupler", Role::kCoupling, "L"));
  t.instances.push_back(make_inst(
      "split", "ybranch", "Y Branch", Role::kDistribution, "(R*C*H - 1)*L",
      "3.0103*log2(R*C*H) + 0.2*ceil(log2(R*C*H))"));
  t.instances.push_back(make_inst("dac_in", "dac", "DAC", Role::kEncoderA,
                                  "R*C*H*L", nullptr, nullptr, false));
  t.instances.push_back(
      make_inst("mzm_in", "mzm", "MZM", Role::kEncoderA, "R*C*H*L"));
  // Weight cells: one thermo-optic phase shifter per crosspoint; their
  // power is data-dependent (paper Fig. 10b).
  t.instances.push_back(make_inst("ps_w", "ps", "PS", Role::kWeightCell,
                                  "R*C*H*W", nullptr, "min(H,W)"));
  // In-node redistribution optics: area is covered by the node floorplan
  // (role kNodeInternal), but they stay on the optical path for the link
  // budget.
  t.instances.push_back(make_inst("redist", "ybranch", "Y Branch",
                                  Role::kNodeInternal, "R*C*H*W", nullptr,
                                  "1"));
  t.instances.push_back(make_inst("xing", "crossing", "Crossing",
                                  Role::kNodeInternal, "R*C*H*W", nullptr,
                                  "max(H,W) - 1"));
  t.instances.push_back(
      make_inst("pd", "pd", "PD", Role::kReadout, "R*C*W*L"));
  t.instances.push_back(
      make_inst("tia", "tia", "TIA", Role::kReadout, "R*C*W*L"));
  t.instances.push_back(
      make_inst("adc", "adc", "ADC", Role::kReadout, "R*C*W*L"));

  t.nets.push_back({"laser", "coupler"});
  t.nets.push_back({"coupler", "split"});
  t.nets.push_back({"split", "mzm_in"});
  t.nets.push_back({"dac_in", "mzm_in"});
  t.nets.push_back({"mzm_in", "ps_w"});
  t.nets.push_back({"ps_w", "redist"});
  t.nets.push_back({"redist", "xing"});
  t.nets.push_back({"xing", "pd"});
  t.nets.push_back({"pd", "tia"});
  t.nets.push_back({"tia", "adc"});
  return t;
}

PtcTemplate mrr_bank_template() {
  PtcTemplate t;
  t.name = "mrr-bank";
  t.node = Netlist("mrr-node");
  t.node.add_instance("i0", "mrr");
  t.node_instance = "mrr_w";
  // Incoherent intensity encoding: operand A is magnitude-only (R+), so two
  // forwards recover full-range inputs (Table I row 3).
  t.taxonomy = {{OperandRange::kNonNegative, ReconfigSpeed::kDynamic},
                {OperandRange::kFullReal, ReconfigSpeed::kDynamic},
                RangeMethod::kDirect};
  t.reconfig_latency_ns = 10.0;  // carrier-injection ring tuning
  t.output_stationary = false;

  t.instances.push_back(
      make_inst("laser", "laser", "Laser", Role::kSource, "L"));
  t.instances.push_back(
      make_inst("coupler", "coupler", "Coupler", Role::kCoupling, "L"));
  t.instances.push_back(make_inst(
      "split", "ybranch", "Y Branch", Role::kDistribution, "(R*C*H - 1)*L",
      "3.0103*log2(R*C*H) + 0.2*ceil(log2(R*C*H))"));
  t.instances.push_back(make_inst("dac_in", "dac", "DAC", Role::kEncoderA,
                                  "R*C*H*L", nullptr, nullptr, false));
  t.instances.push_back(
      make_inst("mod_in", "mrr", "MRR Mod", Role::kEncoderA, "R*C*H*L"));
  t.instances.push_back(make_inst("mrr_w", "mrr", "MRR", Role::kWeightCell,
                                  "R*C*H*W", nullptr, "W"));
  t.instances.push_back(
      make_inst("pd", "pd", "PD", Role::kReadout, "R*C*W"));
  t.instances.push_back(
      make_inst("tia", "tia", "TIA", Role::kReadout, "R*C*W"));
  t.instances.push_back(
      make_inst("adc", "adc", "ADC", Role::kReadout, "R*C*W"));

  t.nets.push_back({"laser", "coupler"});
  t.nets.push_back({"coupler", "split"});
  t.nets.push_back({"split", "mod_in"});
  t.nets.push_back({"dac_in", "mod_in"});
  t.nets.push_back({"mod_in", "mrr_w"});
  t.nets.push_back({"mrr_w", "pd"});
  t.nets.push_back({"pd", "tia"});
  t.nets.push_back({"tia", "adc"});
  return t;
}

PtcTemplate butterfly_template() {
  PtcTemplate t;
  t.name = "butterfly-mesh";
  t.node = Netlist("butterfly-node");
  t.node.add_instance("i0", "mzi");
  t.node_instance = "bfly";
  // Subspace coherent: operand B is a fixed complex transform; differential
  // (pos-neg) output recovers the full range in one forward (Table I).
  t.taxonomy = {{OperandRange::kFullReal, ReconfigSpeed::kDynamic},
                {OperandRange::kComplexFixed, ReconfigSpeed::kStatic},
                RangeMethod::kPosNeg};
  t.reconfig_latency_ns = 10'000.0;
  t.output_stationary = false;

  t.instances.push_back(
      make_inst("laser", "laser", "Laser", Role::kSource, "1"));
  t.instances.push_back(
      make_inst("coupler", "coupler", "Coupler", Role::kCoupling, "1"));
  t.instances.push_back(make_inst(
      "split", "ybranch", "Y Branch", Role::kDistribution, "(R*C*H - 1)",
      "3.0103*log2(R*C*H) + 0.2*ceil(log2(R*C*H))"));
  t.instances.push_back(make_inst("dac_in", "dac", "DAC", Role::kEncoderA,
                                  "R*C*H", nullptr, nullptr, false));
  t.instances.push_back(
      make_inst("mzm_in", "mzm", "MZM", Role::kEncoderA, "R*C*H"));
  // Butterfly mesh: H/2 * log2(H) 2x2 units per projection stage.
  t.instances.push_back(make_inst("bfly", "mzi", "Butterfly",
                                  Role::kWeightCell, "R*C*(H/2)*log2(H)",
                                  nullptr, "log2(H)"));
  t.instances.push_back(
      make_inst("pd", "pd", "PD", Role::kReadout, "2*R*C*W"));
  t.instances.push_back(
      make_inst("tia", "tia", "TIA", Role::kReadout, "2*R*C*W"));
  t.instances.push_back(
      make_inst("adc", "adc", "ADC", Role::kReadout, "R*C*W"));

  t.nets.push_back({"laser", "coupler"});
  t.nets.push_back({"coupler", "split"});
  t.nets.push_back({"split", "mzm_in"});
  t.nets.push_back({"dac_in", "mzm_in"});
  t.nets.push_back({"mzm_in", "bfly"});
  t.nets.push_back({"bfly", "pd"});
  t.nets.push_back({"pd", "tia"});
  t.nets.push_back({"tia", "adc"});
  return t;
}

PtcTemplate pcm_crossbar_template() {
  PtcTemplate t;
  t.name = "pcm-crossbar";
  t.node = Netlist("pcm-node");
  t.node.add_instance("i0", "pcm_cell");
  t.node_instance = "pcm_w";
  // Both operands magnitude-only: 4 forwards for full range (Table I).
  t.taxonomy = {{OperandRange::kNonNegative, ReconfigSpeed::kDynamic},
                {OperandRange::kNonNegative, ReconfigSpeed::kStatic},
                RangeMethod::kDirect};
  t.reconfig_latency_ns = 100.0;  // PCM write pulse
  t.output_stationary = false;

  t.instances.push_back(
      make_inst("laser", "laser", "Laser", Role::kSource, "L"));
  t.instances.push_back(
      make_inst("coupler", "coupler", "Coupler", Role::kCoupling, "L"));
  t.instances.push_back(make_inst(
      "split", "ybranch", "Y Branch", Role::kDistribution, "(R*C*H - 1)*L",
      "3.0103*log2(R*C*H) + 0.2*ceil(log2(R*C*H))"));
  t.instances.push_back(make_inst("dac_in", "dac", "DAC", Role::kEncoderA,
                                  "R*C*H*L", nullptr, nullptr, false));
  t.instances.push_back(
      make_inst("mzm_in", "mzm", "MZM", Role::kEncoderA, "R*C*H*L"));
  t.instances.push_back(make_inst("pcm_w", "pcm_cell", "PCM",
                                  Role::kWeightCell, "R*C*H*W", nullptr,
                                  "W"));
  t.instances.push_back(
      make_inst("pd", "pd", "PD", Role::kReadout, "R*C*W"));
  t.instances.push_back(
      make_inst("tia", "tia", "TIA", Role::kReadout, "R*C*W"));
  t.instances.push_back(
      make_inst("adc", "adc", "ADC", Role::kReadout, "R*C*W"));

  t.nets.push_back({"laser", "coupler"});
  t.nets.push_back({"coupler", "split"});
  t.nets.push_back({"split", "mzm_in"});
  t.nets.push_back({"dac_in", "mzm_in"});
  t.nets.push_back({"mzm_in", "pcm_w"});
  t.nets.push_back({"pcm_w", "pd"});
  t.nets.push_back({"pd", "tia"});
  t.nets.push_back({"tia", "adc"});
  return t;
}

PtcTemplate wdm_link_template() {
  PtcTemplate t;
  t.name = "wdm-link";
  // The whole "core" is one waveguide: an MRR weight bank shaping the comb
  // spectrum, a dispersive delay and a single fast PD.  H plays the role
  // of the kernel length (one ring per tap); W is 1.
  t.node = Netlist("wdm-tap");
  t.node.add_instance("i0", "mrr");
  t.node.add_instance("i1", "crossing");
  t.node.add_net("i0", "i1");
  t.node_instance = "tap";
  // Intensity-encoded inputs (R+), spectrally-shaped weights reconfigured
  // thermally between kernels.
  t.taxonomy = {{OperandRange::kNonNegative, ReconfigSpeed::kDynamic},
                {OperandRange::kFullReal, ReconfigSpeed::kStatic},
                RangeMethod::kDirect};
  t.reconfig_latency_ns = 1'000.0;  // ring bank re-bias between kernels
  t.output_stationary = false;

  t.instances.push_back(
      make_inst("laser", "laser", "Laser", Role::kSource, "L"));
  t.instances.push_back(
      make_inst("coupler", "coupler", "Coupler", Role::kCoupling, "1"));
  t.instances.push_back(make_inst("dac_in", "dac", "DAC", Role::kEncoderA,
                                  "R*C", nullptr, nullptr, false));
  t.instances.push_back(
      make_inst("mod_in", "mzm", "MZM", Role::kEncoderA, "R*C"));
  t.instances.push_back(make_inst("tap", "mrr", "MRR", Role::kWeightCell,
                                  "R*C*H", nullptr, "H"));
  t.instances.push_back(
      make_inst("pd", "pd", "PD", Role::kReadout, "R*C"));
  t.instances.push_back(
      make_inst("tia", "tia", "TIA", Role::kReadout, "R*C"));
  t.instances.push_back(
      make_inst("adc", "adc", "ADC", Role::kReadout, "R*C"));

  t.nets.push_back({"laser", "coupler"});
  t.nets.push_back({"coupler", "mod_in"});
  t.nets.push_back({"dac_in", "mod_in"});
  t.nets.push_back({"mod_in", "tap"});
  t.nets.push_back({"tap", "pd"});
  t.nets.push_back({"pd", "tia"});
  t.nets.push_back({"tia", "adc"});
  return t;
}

std::vector<PtcTemplate> all_templates() {
  std::vector<PtcTemplate> out;
  out.push_back(tempo_template());
  out.push_back(lightening_transformer_template());
  out.push_back(clements_mzi_template());
  out.push_back(scatter_template());
  out.push_back(mrr_bank_template());
  out.push_back(butterfly_template());
  out.push_back(pcm_crossbar_template());
  out.push_back(wdm_link_template());
  return out;
}

}  // namespace simphony::arch
