// Optical receiver noise and SNR analysis — an extension of the link
// budget (paper §III-C4 derives laser power for a target level count; this
// module closes the loop: given a laser power, what SNR and effective
// resolution does the receiver see?).
//
// Noise model: shot noise of the photocurrent, thermal (Johnson) noise of
// the TIA input and relative intensity noise (RIN) of the source,
// integrated over the receiver bandwidth:
//   i_shot^2    = 2 q (R P_rx) B
//   i_thermal^2 = 4 k T B / R_load
//   i_rin^2     = RIN * (R P_rx)^2 * B
//   SNR = (R P_rx)^2 / (i_shot^2 + i_thermal^2 + i_rin^2)
// The effective number of resolvable levels is sqrt(SNR) (amplitude
// levels), i.e. ENOB = log2(sqrt(SNR)).
#pragma once

#include "arch/link_budget.h"

namespace simphony::arch {

struct NoiseInputs {
  double received_power_mW = 0.01;   // optical power at the PD
  double responsivity_A_W = 1.0;     // PD responsivity R
  double bandwidth_GHz = 5.0;        // receiver bandwidth B
  double temperature_K = 300.0;
  double load_ohm = 50.0;            // TIA input impedance
  double rin_dB_Hz = -150.0;         // source relative intensity noise
};

struct NoiseReport {
  double signal_current_uA = 0.0;
  double shot_noise_uA = 0.0;     // rms
  double thermal_noise_uA = 0.0;  // rms
  double rin_noise_uA = 0.0;      // rms
  double snr_dB = 0.0;
  double enob_bits = 0.0;  // effective amplitude resolution
};

/// Closed-form receiver noise analysis.
[[nodiscard]] NoiseReport analyze_receiver_noise(const NoiseInputs& in);

/// End-to-end: laser power from the sub-architecture's link budget, minus
/// the critical path loss, into the receiver model.  `laser_power_mW`
/// <= 0 uses the link-budget-required power (so ENOB ~= input_bits).
[[nodiscard]] NoiseReport analyze_subarch_noise(
    const SubArchitecture& subarch, double laser_power_mW = -1.0);

}  // namespace simphony::arch
