// Netlist representation for PTC circuit topologies (paper §III-B, Fig. 2).
//
// "We customize a netlist representation to describe devices as instances
// and port connectivity as directed 2-pin nets.  Unlike electrical circuit
// netlists with undirected multi-pin nets, PTCs require directed 2-pin nets
// to capture the directional optical signal flow."
//
// A Netlist is the minimal building-block description (a *node*, e.g. a
// dot-product unit); arch-level replication is expressed by scaling rules
// (see node.h / hierarchy.h), not by flattening.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "devlib/library.h"

namespace simphony::arch {

/// One device instantiation inside a netlist.
struct Instance {
  std::string name;    // unique within the netlist, e.g. "i0"
  std::string device;  // DeviceLibrary record name, e.g. "mzm"
};

/// A directed 2-pin net: optical signal flows src -> dst.
struct Net {
  std::string src;
  std::string dst;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  /// Adds an instance; throws std::invalid_argument on duplicate names.
  void add_instance(std::string name, std::string device);

  /// Adds a directed net; endpoints must already exist.
  void add_net(const std::string& src, const std::string& dst);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Instance>& instances() const {
    return instances_;
  }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }

  [[nodiscard]] bool has_instance(const std::string& name) const;

  /// Index of instance by name; nullopt if absent.
  [[nodiscard]] std::optional<size_t> find(const std::string& name) const;

  /// The device record backing an instance; throws if unknown.
  [[nodiscard]] const devlib::DeviceParams& device_of(
      const std::string& instance, const devlib::DeviceLibrary& lib) const;

  /// Checks all instances resolve in `lib` and all nets are well formed.
  /// Returns a list of problems (empty == valid).
  [[nodiscard]] std::vector<std::string> validate(
      const devlib::DeviceLibrary& lib) const;

 private:
  std::string name_;
  std::vector<Instance> instances_;
  std::vector<Net> nets_;
};

}  // namespace simphony::arch
