#include "arch/taxonomy.h"

namespace simphony::arch {

int PtcTaxonomy::forwards() const {
  if (method == RangeMethod::kPosNeg) {
    // Differential computation resolves signs for both operands in a single
    // (two-rail) forward.
    return 1;
  }
  int passes = 1;
  if (operand_a.range == OperandRange::kNonNegative) passes *= 2;
  if (operand_b.range == OperandRange::kNonNegative) passes *= 2;
  return passes;
}

bool PtcTaxonomy::supports_dynamic_tensor_product() const {
  return operand_a.reconfig == ReconfigSpeed::kDynamic &&
         operand_b.reconfig == ReconfigSpeed::kDynamic;
}

std::string to_string(OperandRange range) {
  switch (range) {
    case OperandRange::kFullReal: return "R";
    case OperandRange::kNonNegative: return "R+";
    case OperandRange::kComplexFixed: return "C";
  }
  return "?";
}

std::string to_string(ReconfigSpeed speed) {
  switch (speed) {
    case ReconfigSpeed::kStatic: return "Static";
    case ReconfigSpeed::kDynamic: return "Dynamic";
  }
  return "?";
}

std::string to_string(RangeMethod method) {
  switch (method) {
    case RangeMethod::kDirect: return "Direct";
    case RangeMethod::kPosNeg: return "Pos-Neg";
  }
  return "?";
}

}  // namespace simphony::arch
