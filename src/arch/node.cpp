#include "arch/node.h"

#include <stdexcept>

namespace simphony::arch {

const ArchInstance& PtcTemplate::instance(const std::string& name) const {
  for (const auto& inst : instances) {
    if (inst.name == name) return inst;
  }
  throw std::out_of_range("template '" + this->name +
                          "' has no instance group '" + name + "'");
}

bool PtcTemplate::has_instance(const std::string& name) const {
  for (const auto& inst : instances) {
    if (inst.name == name) return true;
  }
  return false;
}

}  // namespace simphony::arch
