#include "arch/spice_export.h"

#include <map>
#include <set>
#include <sstream>

namespace simphony::arch {

namespace {

/// SPICE identifiers cannot contain spaces or parentheses.
std::string sanitize(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
  }
  return name;
}

void emit_model_card(std::ostringstream& os, const devlib::DeviceParams& dev) {
  os << ".MODEL " << sanitize(dev.name) << " photonic("
     << "il_db=" << dev.insertion_loss_dB
     << " width_um=" << dev.footprint.width_um
     << " height_um=" << dev.footprint.height_um
     << " pstat_mw=" << dev.static_power_mW
     << " edyn_fj=" << dev.dynamic_energy_fJ << ")\n";
}

/// Net naming: each directed 2-pin net gets a wire; instance ports are
/// in/out per the directional optical flow.
std::map<std::string, std::vector<std::string>> wires_by_instance(
    const Netlist& nl, bool incoming) {
  std::map<std::string, std::vector<std::string>> map;
  for (size_t i = 0; i < nl.nets().size(); ++i) {
    const Net& net = nl.nets()[i];
    const std::string wire = "n" + std::to_string(i);
    map[incoming ? net.dst : net.src].push_back(wire);
  }
  return map;
}

void emit_netlist_body(std::ostringstream& os, const Netlist& nl) {
  const auto in_wires = wires_by_instance(nl, /*incoming=*/true);
  const auto out_wires = wires_by_instance(nl, /*incoming=*/false);
  for (const auto& inst : nl.instances()) {
    os << "X" << sanitize(inst.name);
    auto emit_ports = [&](const auto& map, const char* fallback) {
      auto it = map.find(inst.name);
      if (it == map.end() || it->second.empty()) {
        os << ' ' << fallback;
        return;
      }
      for (const auto& w : it->second) os << ' ' << w;
    };
    emit_ports(in_wires, "in");
    emit_ports(out_wires, "out");
    os << ' ' << sanitize(inst.device) << "\n";
  }
}

}  // namespace

std::string export_node_subckt(const PtcTemplate& ptc,
                               const devlib::DeviceLibrary& lib) {
  std::ostringstream os;
  os << "* SimPhony node subcircuit: " << ptc.node.name() << "\n";
  std::set<std::string> devices;
  for (const auto& inst : ptc.node.instances()) devices.insert(inst.device);
  for (const auto& d : devices) emit_model_card(os, lib.get(d));
  os << ".SUBCKT " << sanitize(ptc.node.name()) << " in out\n";
  emit_netlist_body(os, ptc.node);
  os << ".ENDS " << sanitize(ptc.node.name()) << "\n";
  return os.str();
}

std::string export_spice(const SubArchitecture& subarch) {
  const PtcTemplate& t = subarch.ptc();
  const devlib::DeviceLibrary& lib = subarch.library();
  std::ostringstream os;
  os << "* SimPhony export: " << t.name << " @ R=" << subarch.params().tiles
     << " C=" << subarch.params().cores_per_tile
     << " H=" << subarch.params().core_height
     << " W=" << subarch.params().core_width
     << " L=" << subarch.params().wavelengths << "\n";

  std::set<std::string> devices;
  for (const auto& inst : t.instances) devices.insert(inst.device);
  for (const auto& d : devices) emit_model_card(os, lib.get(d));

  os << export_node_subckt(t, lib);

  os << ".SUBCKT TOP in out\n";
  Netlist arch_nl(t.name);
  for (const auto& inst : t.instances) {
    arch_nl.add_instance(inst.name, inst.device);
  }
  for (const auto& net : t.nets) arch_nl.add_net(net.src, net.dst);
  for (const auto& g : subarch.groups()) {
    os << "* group " << g.spec->name << ": count=" << g.count
       << " rule=\"" << g.spec->count.text() << "\"\n";
  }
  emit_netlist_body(os, arch_nl);
  os << ".ENDS TOP\n.END\n";
  return os.str();
}

}  // namespace simphony::arch
