// Link budget analysis (paper §III-C4, Eq. 1).
//
// From the weighted DAG over the arch-level instance groups we extract the
// longest (maximum insertion loss) laser -> photodetector path; the PD
// sensitivity, input level count, wall-plug efficiency and extinction-ratio
// penalty then give the minimum required laser power per wavelength.
#pragma once

#include <string>
#include <vector>

#include "arch/graph.h"
#include "arch/hierarchy.h"
#include "devlib/photonics.h"

namespace simphony::arch {

struct LinkBudgetReport {
  double critical_path_loss_dB = 0.0;
  std::vector<std::string> critical_path;  // instance group names
  double laser_power_per_wavelength_mW = 0.0;
  double total_laser_power_mW = 0.0;  // x wavelengths
  double pd_sensitivity_dBm = 0.0;
  double snr_margin_dB = 0.0;  // at exactly the required laser power: 0
  int input_bits = 0;
};

/// Runs the analysis for a sub-architecture.  `input_bits_override` < 0
/// means use the sub-architecture's configured input bits.
[[nodiscard]] LinkBudgetReport analyze_link_budget(
    const SubArchitecture& subarch, int input_bits_override = -1);

/// The critical-loss path through the template DAG at the sub-arch's
/// parameter point (exposed separately for tests and Fig. 3 prints).
[[nodiscard]] PathResult critical_insertion_loss_path(
    const SubArchitecture& subarch);

}  // namespace simphony::arch
