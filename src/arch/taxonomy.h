// PTC taxonomy (paper Table I, §II-A).
//
// PTC designs differ in the numerical range each operand can encode and how
// fast it can be reconfigured.  Range-restricted designs need multiple
// forward passes to realize a full-range (signed) matrix multiply:
//   * coherent full-range designs (MZI array, TeMPO)         -> 1 forward
//   * subspace coherent with differential output (butterfly) -> 1 forward
//   * incoherent designs with one unipolar operand (MRR)     -> 2 forwards
//   * both operands unipolar (PCM crossbar)                  -> 4 forwards
// SimPhony "automatically analyzes the tensor core property based on
// input/weight/output encoding properties" and applies the I-times latency
// penalty (§III-C2); this module is that derivation.
#pragma once

#include <string>

namespace simphony::arch {

/// Numerical range an operand encoding supports.
enum class OperandRange {
  kFullReal,     // R : signed values in one shot
  kNonNegative,  // R+: magnitude-only encoding (intensity, transmission)
  kComplexFixed, // C : complex-valued but restricted/static subspace
};

/// How fast the operand can be rewritten.
enum class ReconfigSpeed {
  kStatic,   // thermo-optic / PCM: us..ms scale reprogramming
  kDynamic,  // high-speed EO modulators: symbol-rate switching
};

/// How the design recovers full-range output.
enum class RangeMethod {
  kDirect,  // output read directly; unipolar operands need extra passes
  kPosNeg,  // differential (positive/negative rail) computation
};

struct OperandSpec {
  OperandRange range = OperandRange::kFullReal;
  ReconfigSpeed reconfig = ReconfigSpeed::kDynamic;
};

/// Taxonomy record for one PTC design (one row of Table I).
struct PtcTaxonomy {
  OperandSpec operand_a;  // typically the activation operand
  OperandSpec operand_b;  // typically the weight operand
  RangeMethod method = RangeMethod::kDirect;

  /// Number of forward passes I required for full-range output.
  [[nodiscard]] int forwards() const;

  /// True if the design can serve dynamic x dynamic products (e.g.
  /// self-attention): both operands must be dynamically reconfigurable.
  [[nodiscard]] bool supports_dynamic_tensor_product() const;
};

[[nodiscard]] std::string to_string(OperandRange range);
[[nodiscard]] std::string to_string(ReconfigSpeed speed);
[[nodiscard]] std::string to_string(RangeMethod method);

}  // namespace simphony::arch
