// SPICE-style netlist export (paper §III-B: "This universal, hierarchical
// netlist interface also enables potential SPICE simulation and physical
// design as a future extension").
//
// Emits the node building block as a .SUBCKT with one X-instance per
// device (model cards carry the insertion loss and footprint as
// parameters) and the arch level as a top cell instantiating the node
// subcircuit with its evaluated replication counts in comments — enough
// for an EPDA flow to pick up and elaborate.
#pragma once

#include <string>

#include "arch/hierarchy.h"

namespace simphony::arch {

/// Renders the node netlist of a template as a SPICE .SUBCKT.
[[nodiscard]] std::string export_node_subckt(const PtcTemplate& ptc,
                                             const devlib::DeviceLibrary& lib);

/// Renders the complete materialized sub-architecture: model cards for
/// every referenced device, the node subcircuit and a TOP cell with the
/// arch-level instance groups and their evaluated counts.
[[nodiscard]] std::string export_spice(const SubArchitecture& subarch);

}  // namespace simphony::arch
