#include "arch/graph.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace simphony::arch {

Dag Dag::from_netlist(
    const Netlist& netlist,
    const std::function<double(const Instance&)>& vertex_weight) {
  Dag g;
  std::map<std::string, size_t> index;
  for (const auto& inst : netlist.instances()) {
    index[inst.name] = g.names_.size();
    g.names_.push_back(inst.name);
    g.weights_.push_back(vertex_weight(inst));
  }
  g.adj_.assign(g.names_.size(), {});
  g.in_degree_.assign(g.names_.size(), 0);
  for (const auto& net : netlist.nets()) {
    const size_t u = index.at(net.src);
    const size_t v = index.at(net.dst);
    g.adj_[u].push_back(v);
    ++g.in_degree_[v];
  }
  g.compute_topo();
  return g;
}

Dag Dag::from_netlist(const Netlist& netlist,
                      const devlib::DeviceLibrary& lib) {
  return from_netlist(netlist, [&](const Instance& inst) {
    return lib.get(inst.device).insertion_loss_dB;
  });
}

void Dag::compute_topo() {
  std::vector<size_t> degree = in_degree_;
  std::vector<size_t> queue;
  for (size_t v = 0; v < names_.size(); ++v) {
    if (degree[v] == 0) queue.push_back(v);
  }
  topo_.clear();
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const size_t u = queue[qi];
    topo_.push_back(u);
    for (size_t v : adj_[u]) {
      if (--degree[v] == 0) queue.push_back(v);
    }
  }
  if (topo_.size() != names_.size()) {
    throw std::invalid_argument(
        "netlist contains a cycle: directed optical signal flow must be "
        "acyclic");
  }
}

std::vector<int> Dag::levels() const {
  std::vector<int> level(names_.size(), 0);
  for (size_t u : topo_) {
    for (size_t v : adj_[u]) {
      level[v] = std::max(level[v], level[u] + 1);
    }
  }
  return level;
}

PathResult Dag::longest_path() const {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> best(names_.size(), kNegInf);
  std::vector<ptrdiff_t> pred(names_.size(), -1);
  for (size_t v = 0; v < names_.size(); ++v) {
    if (in_degree_[v] == 0) best[v] = weights_[v];
  }
  double best_total = kNegInf;
  size_t best_sink = 0;
  for (size_t u : topo_) {
    if (best[u] == kNegInf) continue;
    if (adj_[u].empty() && best[u] > best_total) {
      best_total = best[u];
      best_sink = u;
    }
    for (size_t v : adj_[u]) {
      const double cand = best[u] + weights_[v];
      if (cand > best[v]) {
        best[v] = cand;
        pred[v] = static_cast<ptrdiff_t>(u);
      }
    }
  }
  PathResult result;
  if (best_total == kNegInf) return result;  // empty graph
  result.weight = best_total;
  for (ptrdiff_t v = static_cast<ptrdiff_t>(best_sink); v >= 0;
       v = pred[static_cast<size_t>(v)]) {
    result.path.push_back(names_[static_cast<size_t>(v)]);
    if (pred[static_cast<size_t>(v)] < 0) break;
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

PathResult Dag::longest_path(const std::string& src,
                             const std::string& dst) const {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  auto src_it = std::find(names_.begin(), names_.end(), src);
  auto dst_it = std::find(names_.begin(), names_.end(), dst);
  if (src_it == names_.end() || dst_it == names_.end()) {
    throw std::out_of_range("longest_path: unknown vertex name");
  }
  const size_t s = static_cast<size_t>(src_it - names_.begin());
  const size_t t = static_cast<size_t>(dst_it - names_.begin());
  std::vector<double> best(names_.size(), kNegInf);
  std::vector<ptrdiff_t> pred(names_.size(), -1);
  best[s] = weights_[s];
  for (size_t u : topo_) {
    if (best[u] == kNegInf) continue;
    for (size_t v : adj_[u]) {
      const double cand = best[u] + weights_[v];
      if (cand > best[v]) {
        best[v] = cand;
        pred[v] = static_cast<ptrdiff_t>(u);
      }
    }
  }
  PathResult result;
  if (best[t] == kNegInf) {
    result.weight = kNegInf;
    return result;
  }
  result.weight = best[t];
  for (ptrdiff_t v = static_cast<ptrdiff_t>(t); v >= 0;
       v = pred[static_cast<size_t>(v)]) {
    result.path.push_back(names_[static_cast<size_t>(v)]);
    if (static_cast<size_t>(v) == s) break;
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

}  // namespace simphony::arch
