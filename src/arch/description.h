// Circuit description files (paper §III-B: "These scaling rules are
// expressed as customizable symbolic expressions in circuit description
// files, enabling user-defined reuse styles to suit specific designs").
//
// A PtcTemplate can be authored as plain text instead of C++.  Line-based
// format; '#' starts a comment; values with spaces are double-quoted.
//
//   template my-ptc
//   output_stationary 1
//   reconfig_ns 100
//   taxonomy a=R,dynamic b=R+,static method=direct
//   node_instance cell
//   nodedev i0 ps
//   nodedev i1 mmi
//   nodenet i0 i1
//   inst name=laser  dev=laser   cat=Laser     role=source count=L
//   inst name=split  dev=ybranch cat="Y Branch" role=distribution ...
//   ... count=(R*C*H-1)*L pathloss="3.0103*log2(R*C*H)"
//   inst name=cell   dev=mmi     cat=Node      role=node count=R*C*H*W
//   net laser split
//
// Roles: source, coupling, encoder_a, encoder_b, distribution, node,
// weight, readout, other.  Ranges: R, R+, C.  Reconfig: static, dynamic.
// Method: direct, posneg.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "arch/node.h"

namespace simphony::arch {

class DescriptionError : public std::runtime_error {
 public:
  explicit DescriptionError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Parses a circuit description; throws DescriptionError with the line
/// number on malformed input.
[[nodiscard]] PtcTemplate parse_description(std::string_view text);

/// Serializes a template back to the description format (round-trippable
/// up to comment/whitespace normalization).
[[nodiscard]] std::string write_description(const PtcTemplate& ptc);

}  // namespace simphony::arch
