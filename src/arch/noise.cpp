#include "arch/noise.h"

#include <cmath>
#include <stdexcept>

#include "util/units.h"

namespace simphony::arch {

namespace {
constexpr double kElectronCharge_C = 1.602176634e-19;
constexpr double kBoltzmann_J_K = 1.380649e-23;
}  // namespace

NoiseReport analyze_receiver_noise(const NoiseInputs& in) {
  if (in.received_power_mW <= 0 || in.bandwidth_GHz <= 0 ||
      in.load_ohm <= 0) {
    throw std::invalid_argument(
        "receiver noise inputs must be positive (power, bandwidth, load)");
  }
  const double p_rx_W = in.received_power_mW * 1e-3;
  const double bw_Hz = in.bandwidth_GHz * 1e9;
  const double i_sig_A = in.responsivity_A_W * p_rx_W;

  const double shot_A2 = 2.0 * kElectronCharge_C * i_sig_A * bw_Hz;
  const double thermal_A2 =
      4.0 * kBoltzmann_J_K * in.temperature_K * bw_Hz / in.load_ohm;
  const double rin_lin = std::pow(10.0, in.rin_dB_Hz / 10.0);
  const double rin_A2 = rin_lin * i_sig_A * i_sig_A * bw_Hz;

  NoiseReport r;
  r.signal_current_uA = i_sig_A * 1e6;
  r.shot_noise_uA = std::sqrt(shot_A2) * 1e6;
  r.thermal_noise_uA = std::sqrt(thermal_A2) * 1e6;
  r.rin_noise_uA = std::sqrt(rin_A2) * 1e6;
  const double snr = i_sig_A * i_sig_A / (shot_A2 + thermal_A2 + rin_A2);
  r.snr_dB = 10.0 * std::log10(snr);
  r.enob_bits = std::max(0.0, std::log2(std::sqrt(snr)));
  return r;
}

NoiseReport analyze_subarch_noise(const SubArchitecture& subarch,
                                  double laser_power_mW) {
  const LinkBudgetReport link = analyze_link_budget(subarch);
  const double launch_mW = laser_power_mW > 0
                               ? laser_power_mW
                               : link.laser_power_per_wavelength_mW;
  // Wall-plug power -> optical launch power via the laser efficiency,
  // then attenuate along the critical path.
  const devlib::DeviceLibrary& lib = subarch.library();
  const double wpe = lib.get("laser").prop_or("wall_plug_efficiency", 0.25);
  const double optical_mW = launch_mW * wpe;
  const double rx_mW =
      optical_mW * util::dB_to_ratio(-link.critical_path_loss_dB);

  NoiseInputs in;
  in.received_power_mW = rx_mW;
  in.bandwidth_GHz = subarch.params().clock_GHz;
  for (const auto& g : subarch.groups()) {
    const devlib::DeviceParams& dev = lib.get(g.spec->device);
    if (dev.extra.count("responsivity_A_W")) {
      in.responsivity_A_W = dev.prop("responsivity_A_W");
    }
  }
  return analyze_receiver_noise(in);
}

}  // namespace simphony::arch
