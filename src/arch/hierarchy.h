// Hierarchical, parametric heterogeneous architecture builder
// (SimPhony-Arch, paper §III-B).
//
// Device -> Node -> Core -> Sub-architecture -> Architecture.  A
// SubArchitecture materializes a PtcTemplate at a concrete parameter point
// (R tiles, C cores/tile, H x W nodes/core, L wavelengths, clock) by
// evaluating the symbolic scaling rules; an Architecture is a set of
// sub-architectures sharing one memory hierarchy (heterogeneous multi-core,
// paper §IV-B4).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/node.h"
#include "devlib/library.h"
#include "util/expr.h"

namespace simphony::arch {

/// Concrete parameter point for a sub-architecture.
/// Equality-comparable so that DSE evaluation caches can key on it.
struct ArchParams {
  int tiles = 2;           // R
  int cores_per_tile = 2;  // C
  int core_height = 4;     // H
  int core_width = 4;      // W
  int wavelengths = 4;     // L (spectral parallelism)
  double clock_GHz = 5.0;  // PTC symbol rate f

  int input_bits = 4;   // activation encoding resolution (DAC A / laser)
  int weight_bits = 4;  // weight encoding resolution (DAC B / cells)
  int output_bits = 8;  // ADC resolution

  [[nodiscard]] bool operator==(const ArchParams&) const = default;
};

/// Builds the expression environment for scaling rules.
[[nodiscard]] util::Env make_env(const ArchParams& p);

/// A materialized instance group: template group + evaluated count.
struct MaterializedInstance {
  const ArchInstance* spec = nullptr;
  long long count = 0;
  double unit_area_um2 = 0.0;
  double path_loss_dB = 0.0;  // contribution if traversed on critical path
};

/// A PtcTemplate instantiated at a parameter point against a device library.
///
/// The template is held behind a shared_ptr so that many sub-architectures
/// (e.g. every point of a DSE sweep) can share one immutable template
/// instead of deep-copying it, and so that copies of a SubArchitecture
/// never invalidate the `MaterializedInstance::spec` pointers into it.
class SubArchitecture {
 public:
  SubArchitecture(PtcTemplate ptc_template, ArchParams params,
                  const devlib::DeviceLibrary& lib);
  SubArchitecture(std::shared_ptr<const PtcTemplate> ptc_template,
                  ArchParams params, const devlib::DeviceLibrary& lib);

  [[nodiscard]] const PtcTemplate& ptc() const { return *template_; }
  [[nodiscard]] const ArchParams& params() const { return params_; }
  [[nodiscard]] const devlib::DeviceLibrary& library() const { return *lib_; }
  [[nodiscard]] const std::string& name() const { return template_->name; }

  /// All materialized groups in template order.
  [[nodiscard]] const std::vector<MaterializedInstance>& groups() const {
    return groups_;
  }

  /// Group lookup by name; throws std::out_of_range if absent.
  [[nodiscard]] const MaterializedInstance& group(
      const std::string& name) const;

  [[nodiscard]] bool has_group(const std::string& name) const;

  /// Evaluated count of an instance group (0 if the group is absent).
  [[nodiscard]] long long count_of(const std::string& name) const;

  /// Total number of replicated nodes (R*C*H*W for array-style PTCs).
  [[nodiscard]] long long node_count() const;

  /// MACs the sub-architecture completes per cycle at full utilization.
  [[nodiscard]] long long macs_per_cycle() const;

 private:
  std::shared_ptr<const PtcTemplate> template_;
  ArchParams params_;
  const devlib::DeviceLibrary* lib_;
  std::vector<MaterializedInstance> groups_;
};

/// A heterogeneous architecture: several sub-architectures sharing one
/// memory hierarchy (paper Fig. 11).
class Architecture {
 public:
  explicit Architecture(std::string name) : name_(std::move(name)) {}

  /// Adds a sub-architecture; returns its index.
  size_t add_subarch(SubArchitecture subarch);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] size_t subarch_count() const { return subarchs_.size(); }
  [[nodiscard]] const SubArchitecture& subarch(size_t idx) const;
  [[nodiscard]] const SubArchitecture& subarch(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> subarch_names() const;

 private:
  std::string name_;
  std::vector<SubArchitecture> subarchs_;
};

}  // namespace simphony::arch
